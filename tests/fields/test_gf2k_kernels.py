"""Property tests for the table-free carryless GF(2^k) kernels.

``VectorGF2k`` carries two multiplication kernels — log/exp table
gathers and the carryless shift-and-XOR kernel — selected by array size
against ``table_free_min``.  The contract here: both kernels compute
the *same* polynomial multiplication modulo the same irreducible, so
the crossover threshold is purely a performance knob.  Every test pins
one kernel explicitly (``table_free_min=0`` forces carryless,
``table_free_min`` huge forces gathers) and checks it against the
scalar reference field and against the other kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import gf2k
from repro.fields.vectorized import CARRYLESS_MAX_K, VectorGF2k

#: Force-carryless / force-gathers thresholds.
ALWAYS_CLMUL = 0
NEVER_CLMUL = 1 << 60


def _kernels(k):
    """(field, carryless-pinned backend, gather-pinned backend or None)."""
    field = gf2k(k)
    clmul = VectorGF2k(field, table_free_min=ALWAYS_CLMUL)
    tables = (
        VectorGF2k(field, table_free_min=NEVER_CLMUL)
        if field.has_tables
        else None
    )
    return field, clmul, tables


def _sample(field, size, seed=0):
    rng = np.random.default_rng(seed)
    vec = VectorGF2k(field, table_free_min=NEVER_CLMUL if field.has_tables
                     else ALWAYS_CLMUL)
    return vec.random(size, rng)


class TestCarrylessMatchesScalar:
    """The carryless kernel agrees with the scalar reference field."""

    @pytest.mark.parametrize("k", [4, 8, 16, 17, 20, 32])
    def test_mul(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 257, seed=k)
        b = _sample(field, 257, seed=k + 1)
        expected = [field.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert clmul.mul(a, b).tolist() == expected

    @pytest.mark.parametrize("k", [8, 16, 20, 32])
    def test_scale(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 129, seed=k)
        for scalar in (0, 1, 2, field.order - 1, field.order // 3):
            expected = [field.mul(int(x), scalar) for x in a]
            assert clmul.scale(a, scalar).tolist() == expected

    @pytest.mark.parametrize("k", [17, 20, 32])
    def test_fermat_inverse_tableless(self, k):
        """For tableless k the Fermat carryless ladder is the only inverse."""
        field, clmul, _ = _kernels(k)
        a = _sample(field, 65, seed=k)
        a[a == 0] = 1
        inverses = clmul.inv(a)
        assert [field.mul(int(x), int(y)) for x, y in zip(a, inverses)] == [
            1
        ] * a.size
        assert inverses.tolist() == [field.inv(int(x)) for x in a]

    def test_table_inverse_matches_scalar(self):
        field, _, tables = _kernels(16)
        a = _sample(field, 65, seed=3)
        a[a == 0] = 1
        assert tables.inv(a).tolist() == [field.inv(int(x)) for x in a]


class TestKernelCrossAgreement:
    """Both kernels, same field: identical outputs for identical inputs."""

    @pytest.mark.parametrize("k", [4, 8, 12, 16])
    def test_mul_and_scale(self, k):
        field, clmul, tables = _kernels(k)
        a = _sample(field, 511, seed=k)
        b = _sample(field, 511, seed=k + 7)
        assert np.array_equal(clmul.mul(a, b), tables.mul(a, b))
        scalar = int(a[0]) or 1
        assert np.array_equal(clmul.scale(b, scalar), tables.scale(b, scalar))

    def test_threshold_crossover_is_invisible(self):
        """A mid-range threshold: results must not change at the seam."""
        field = gf2k(16)
        crossing = VectorGF2k(field, table_free_min=64)
        reference = VectorGF2k(field, table_free_min=NEVER_CLMUL)
        for size in (1, 63, 64, 65, 200):
            a = _sample(field, size, seed=size)
            b = _sample(field, size, seed=size + 1)
            assert np.array_equal(crossing.mul(a, b), reference.mul(a, b))
            assert np.array_equal(
                crossing.scale(a, 0x1234), reference.scale(a, 0x1234)
            )


class TestAlgebraicLaws:
    """Ring axioms hold array-wise under the carryless kernel."""

    @pytest.mark.parametrize("k", [8, 16, 20, 32])
    def test_commutativity(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 256, seed=k)
        b = _sample(field, 256, seed=k + 1)
        assert np.array_equal(clmul.mul(a, b), clmul.mul(b, a))

    @pytest.mark.parametrize("k", [8, 16, 20, 32])
    def test_associativity(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 256, seed=k)
        b = _sample(field, 256, seed=k + 1)
        c = _sample(field, 256, seed=k + 2)
        assert np.array_equal(
            clmul.mul(clmul.mul(a, b), c), clmul.mul(a, clmul.mul(b, c))
        )

    @pytest.mark.parametrize("k", [8, 16, 20, 32])
    def test_distributivity(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 256, seed=k)
        b = _sample(field, 256, seed=k + 1)
        c = _sample(field, 256, seed=k + 2)
        assert np.array_equal(
            clmul.mul(a, clmul.add(b, c)),
            clmul.add(clmul.mul(a, b), clmul.mul(a, c)),
        )

    @pytest.mark.parametrize("k", [8, 16, 20, 32])
    def test_identities(self, k):
        field, clmul, _ = _kernels(k)
        a = _sample(field, 128, seed=k)
        ones = np.ones_like(a)
        zeros = np.zeros_like(a)
        assert np.array_equal(clmul.mul(a, ones), a)
        assert np.array_equal(clmul.mul(a, zeros), zeros)
        assert np.array_equal(clmul.add(a, a), zeros)


class TestEdgeShapes:
    """Empty and length-1 arrays flow through both kernels."""

    @pytest.mark.parametrize("threshold", [ALWAYS_CLMUL, NEVER_CLMUL])
    def test_empty(self, threshold):
        field = gf2k(16)
        vec = VectorGF2k(field, table_free_min=threshold)
        empty = vec.array([])
        assert vec.mul(empty, empty).shape == (0,)
        assert vec.scale(empty, 7).shape == (0,)
        assert vec.add(empty, empty).shape == (0,)
        assert vec.inv(empty).shape == (0,)

    @pytest.mark.parametrize("threshold", [ALWAYS_CLMUL, NEVER_CLMUL])
    def test_length_one(self, threshold):
        field = gf2k(16)
        vec = VectorGF2k(field, table_free_min=threshold)
        a = vec.array([0x2B])
        b = vec.array([0x9D])
        assert int(vec.mul(a, b)[0]) == field.mul(0x2B, 0x9D)
        assert int(vec.scale(a, 0x9D)[0]) == field.mul(0x2B, 0x9D)
        assert int(vec.inv(a)[0]) == field.inv(0x2B)

    def test_empty_tableless(self):
        vec = VectorGF2k(gf2k(32), table_free_min=ALWAYS_CLMUL)
        empty = vec.array([])
        assert vec.mul(empty, empty).shape == (0,)
        assert vec.inv(empty).shape == (0,)


class TestHypothesisProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        k=st.sampled_from((8, 16, 20, 32)),
        data=st.data(),
    )
    def test_random_products_match_scalar(self, k, data):
        field = gf2k(k)
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=field.order - 1),
                min_size=1,
                max_size=40,
            )
        )
        others = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=field.order - 1),
                min_size=len(values),
                max_size=len(values),
            )
        )
        clmul = VectorGF2k(field, table_free_min=ALWAYS_CLMUL)
        a = clmul.array(values)
        b = clmul.array(others)
        assert clmul.mul(a, b).tolist() == [
            field.mul(x, y) for x, y in zip(values, others)
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        value=st.integers(min_value=1, max_value=(1 << 20) - 1),
    )
    def test_fermat_inverse_roundtrip_k20(self, value):
        field = gf2k(20)
        clmul = VectorGF2k(field, table_free_min=ALWAYS_CLMUL)
        a = clmul.array([value])
        assert int(clmul.mul(a, clmul.inv(a))[0]) == 1

    def test_carryless_width_boundary(self):
        """k = CARRYLESS_MAX_K works; k + 1 is rejected."""
        assert CARRYLESS_MAX_K == 32
        vec = VectorGF2k(gf2k(32), table_free_min=ALWAYS_CLMUL)
        a = vec.array([0xDEADBEEF % (1 << 32)])
        b = vec.array([0x1234567])
        assert int(vec.mul(a, b)[0]) == gf2k(32).mul(int(a[0]), int(b[0]))
        with pytest.raises(ValueError):
            VectorGF2k(gf2k(33))
