"""Tests for numpy-vectorized GF(2^k) arithmetic."""

import random

import numpy as np
import pytest

from repro.fields import Polynomial, gf2k
from repro.fields.vectorized import VectorGF2k


@pytest.fixture(scope="module")
def vec():
    return VectorGF2k(gf2k(16))


class TestConstruction:
    def test_tableless_field_rejected(self):
        with pytest.raises(ValueError):
            VectorGF2k(gf2k(32))

    def test_array_range_check(self, vec):
        with pytest.raises(ValueError):
            vec.array([vec.order])


class TestAgreementWithScalar:
    """Every vector op must agree with the scalar field arithmetic."""

    def test_mul(self, vec):
        f = vec.field
        rng = random.Random(0)
        a = [rng.randrange(f.order) for _ in range(500)]
        b = [rng.randrange(f.order) for _ in range(500)]
        out = vec.mul(vec.array(a), vec.array(b))
        for x, y, z in zip(a, b, out.tolist()):
            assert z == f.mul(x, y)

    def test_mul_with_zeros(self, vec):
        out = vec.mul(vec.array([0, 1, 5, 0]), vec.array([7, 0, 3, 0]))
        assert out.tolist() == [0, 0, vec.field.mul(5, 3), 0]

    def test_add(self, vec):
        out = VectorGF2k.add(vec.array([1, 2, 3]), vec.array([3, 2, 1]))
        assert out.tolist() == [2, 0, 2]

    def test_scale(self, vec):
        f = vec.field
        a = vec.array([0, 1, 2, 77])
        out = vec.scale(a, 9)
        assert out.tolist() == [f.mul(v, 9) for v in (0, 1, 2, 77)]
        assert vec.scale(a, 0).tolist() == [0, 0, 0, 0]

    def test_inv(self, vec):
        f = vec.field
        a = [1, 2, 3, 1000]
        out = vec.inv(vec.array(a))
        for x, y in zip(a, out.tolist()):
            assert f.mul(x, y) == 1

    def test_inv_zero_raises(self, vec):
        with pytest.raises(ZeroDivisionError):
            vec.inv(vec.array([1, 0]))

    def test_broadcasting(self, vec):
        f = vec.field
        out = vec.mul(vec.array([1, 2, 3]), np.uint32(5))
        assert out.tolist() == [f.mul(v, 5) for v in (1, 2, 3)]


class TestPolynomialEvaluation:
    def test_horner_matches_polynomial(self, vec):
        f = vec.field
        rng = random.Random(1)
        polys = [Polynomial.random(f, 3, rng) for _ in range(40)]
        coeffs = np.array(
            [[p.coefficient(j).value for j in range(4)] for p in polys],
            dtype=np.uint32,
        )
        for x in (0, 1, 5, 1234):
            out = vec.horner_eval(coeffs, f.encode(x))
            for p, v in zip(polys, out.tolist()):
                assert v == p(x).value

    def test_eval_at_points_shape(self, vec):
        coeffs = np.zeros((7, 3), dtype=np.uint32)
        table = vec.eval_at_points(coeffs, [1, 2, 3, 4])
        assert table.shape == (7, 4)
        assert (table == 0).all()

    def test_1d_coeffs_rejected(self, vec):
        with pytest.raises(ValueError):
            vec.horner_eval(np.zeros(4, dtype=np.uint32), 1)

    def test_dot(self, vec):
        f = vec.field
        a = [3, 5, 7]
        b = [11, 13, 17]
        expected = 0
        for x, y in zip(a, b):
            expected ^= f.mul(x, y)
        assert vec.dot(vec.array(a), vec.array(b)) == expected


class TestIdealVSSIntegration:
    def test_vectorized_dealing_matches_scalar_path(self):
        """Same rng seed => identical share tables on both paths."""
        import random as pyrandom

        from repro.vss import IdealVSS

        f = gf2k(16)
        scheme = IdealVSS(f, n=5, t=2)
        secrets = [f(i * 3 + 1) for i in range(64)]  # >= 32: vector path

        session_v = scheme.new_session(pyrandom.Random(0))
        session_v._deal(0, 0, secrets, pyrandom.Random(42))

        session_s = scheme.new_session(pyrandom.Random(0))
        session_s._vector_checked = True  # force the scalar path
        session_s._vector = None
        session_s._deal(0, 0, secrets, pyrandom.Random(42))

        assert session_v._evals == session_s._evals

    def test_small_batches_use_scalar_path(self):
        import random as pyrandom

        from repro.vss import IdealVSS

        f = gf2k(16)
        scheme = IdealVSS(f, n=4, t=1)
        session = scheme.new_session(pyrandom.Random(0))
        session._deal(0, 0, [f(9)], pyrandom.Random(1))
        assert session._evals[0][0] == 9  # the secret at x=0
