"""Tests for numpy-vectorized field arithmetic (GF(2^k) and primes)."""

import random

import numpy as np
import pytest

from repro.fields import Polynomial, PrimeField, gf2k, lagrange_coefficients
from repro.fields.vectorized import (
    VectorGF2k,
    VectorPrimeField,
    vector_backend,
)


@pytest.fixture(scope="module")
def vec():
    return VectorGF2k(gf2k(16))


@pytest.fixture(
    scope="module",
    params=[gf2k(16), PrimeField(65521)],
    ids=lambda f: f.short_name,
)
def backend(request):
    return vector_backend(request.param)


class TestConstruction:
    def test_beyond_carryless_width_rejected(self):
        # k > 32 exceeds the carryless kernel (bit 2k-2 would overflow
        # uint64); tableless fields up to k = 32 are now supported.
        with pytest.raises(ValueError):
            VectorGF2k(gf2k(33))

    def test_tableless_field_accepted(self):
        vec = VectorGF2k(gf2k(32))
        assert vec._exp is None
        assert vec.dtype is np.uint64

    def test_array_range_check(self, vec):
        with pytest.raises(ValueError):
            vec.array([vec.order])


class TestAgreementWithScalar:
    """Every vector op must agree with the scalar field arithmetic."""

    def test_mul(self, vec):
        f = vec.field
        rng = random.Random(0)
        a = [rng.randrange(f.order) for _ in range(500)]
        b = [rng.randrange(f.order) for _ in range(500)]
        out = vec.mul(vec.array(a), vec.array(b))
        for x, y, z in zip(a, b, out.tolist()):
            assert z == f.mul(x, y)

    def test_mul_with_zeros(self, vec):
        out = vec.mul(vec.array([0, 1, 5, 0]), vec.array([7, 0, 3, 0]))
        assert out.tolist() == [0, 0, vec.field.mul(5, 3), 0]

    def test_add(self, vec):
        out = vec.add(vec.array([1, 2, 3]), vec.array([3, 2, 1]))
        assert out.tolist() == [2, 0, 2]

    def test_scale(self, vec):
        f = vec.field
        a = vec.array([0, 1, 2, 77])
        out = vec.scale(a, 9)
        assert out.tolist() == [f.mul(v, 9) for v in (0, 1, 2, 77)]
        assert vec.scale(a, 0).tolist() == [0, 0, 0, 0]

    def test_inv(self, vec):
        f = vec.field
        a = [1, 2, 3, 1000]
        out = vec.inv(vec.array(a))
        for x, y in zip(a, out.tolist()):
            assert f.mul(x, y) == 1

    def test_inv_zero_raises(self, vec):
        with pytest.raises(ZeroDivisionError):
            vec.inv(vec.array([1, 0]))

    def test_broadcasting(self, vec):
        f = vec.field
        out = vec.mul(vec.array([1, 2, 3]), np.uint32(5))
        assert out.tolist() == [f.mul(v, 5) for v in (1, 2, 3)]


class TestPolynomialEvaluation:
    def test_horner_matches_polynomial(self, vec):
        f = vec.field
        rng = random.Random(1)
        polys = [Polynomial.random(f, 3, rng) for _ in range(40)]
        coeffs = np.array(
            [[p.coefficient(j).value for j in range(4)] for p in polys],
            dtype=np.uint32,
        )
        for x in (0, 1, 5, 1234):
            out = vec.horner_eval(coeffs, f.encode(x))
            for p, v in zip(polys, out.tolist()):
                assert v == p(x).value

    def test_eval_at_points_shape(self, vec):
        coeffs = np.zeros((7, 3), dtype=np.uint32)
        table = vec.eval_at_points(coeffs, [1, 2, 3, 4])
        assert table.shape == (7, 4)
        assert (table == 0).all()

    def test_1d_coeffs_rejected(self, vec):
        with pytest.raises(ValueError):
            vec.horner_eval(np.zeros(4, dtype=np.uint32), 1)

    def test_dot(self, vec):
        f = vec.field
        a = [3, 5, 7]
        b = [11, 13, 17]
        expected = 0
        for x, y in zip(a, b):
            expected ^= f.mul(x, y)
        assert vec.dot(vec.array(a), vec.array(b)) == expected


class TestFactory:
    def test_gf2k_backend(self):
        assert isinstance(vector_backend(gf2k(16)), VectorGF2k)

    def test_prime_backend(self):
        assert isinstance(vector_backend(PrimeField(97)), VectorPrimeField)

    def test_tableless_gf2k_accepted(self):
        assert isinstance(vector_backend(gf2k(32)), VectorGF2k)

    def test_beyond_carryless_width_rejected(self):
        with pytest.raises(ValueError):
            vector_backend(gf2k(33))

    def test_huge_prime_rejected(self):
        with pytest.raises(ValueError):
            vector_backend(PrimeField(2**31 + 11))

    def test_boundary_prime_accepted(self):
        vec = vector_backend(PrimeField(2**31 - 1))
        assert int(vec.mul(vec.array([2**31 - 2]), vec.array([2**31 - 2]))[0]) == (
            (2**31 - 2) ** 2
        ) % (2**31 - 1)


class TestPrimeFieldAgreement:
    """The uint64 prime substrate must agree with the scalar field."""

    @pytest.fixture(scope="class")
    def pvec(self):
        return VectorPrimeField(PrimeField(65521))

    def test_add_mul_neg(self, pvec):
        f = pvec.field
        rng = random.Random(14)
        a = [rng.randrange(f.order) for _ in range(300)]
        b = [rng.randrange(f.order) for _ in range(300)]
        adds = pvec.add(pvec.array(a), pvec.array(b)).tolist()
        muls = pvec.mul(pvec.array(a), pvec.array(b)).tolist()
        negs = pvec.neg(pvec.array(a)).tolist()
        for x, y, s, m, ng in zip(a, b, adds, muls, negs):
            assert s == f.add(x, y)
            assert m == f.mul(x, y)
            assert ng == f.neg(x)

    def test_inv(self, pvec):
        f = pvec.field
        a = [1, 2, 3, 65520, 12345]
        for x, y in zip(a, pvec.inv(pvec.array(a)).tolist()):
            assert f.mul(x, y) == 1

    def test_inv_zero_raises(self, pvec):
        with pytest.raises(ZeroDivisionError):
            pvec.inv(pvec.array([1, 0]))

    def test_reduce_sum(self, pvec):
        rows = [[60000, 60000, 60000], [1, 2, 3]]
        out = pvec.reduce_sum(pvec.array(rows), axis=1).tolist()
        assert out == [(3 * 60000) % pvec.field.p, 6]


class TestBatchKernels:
    """Vandermonde eval + interpolation-at-zero across both substrates."""

    def test_vandermonde_entries(self, backend):
        f = backend.field
        xs = [1, 2, 3, 5]
        table = backend.vandermonde(xs, 3)
        assert table.shape == (4, 4)
        for i, x in enumerate(xs):
            power = f.encode(1)
            for j in range(4):
                assert int(table[i, j]) == power
                power = f.mul(power, x)

    def test_vandermonde_negative_degree(self, backend):
        with pytest.raises(ValueError):
            backend.vandermonde([1, 2], -1)

    def test_batch_eval_matches_polynomial(self, backend):
        f = backend.field
        rng = random.Random(15)
        polys = [Polynomial.random(f, 3, rng) for _ in range(25)]
        coeffs = backend.array(
            [[p.coefficient(j).value for j in range(4)] for p in polys]
        )
        xs = [1, 2, 3, 4, 5]
        out = backend.batch_eval(coeffs, xs)
        assert out.shape == (25, 5)
        for r, p in enumerate(polys):
            for i, x in enumerate(xs):
                assert int(out[r, i]) == p(x).value

    def test_batch_eval_cached_vandermonde(self, backend):
        coeffs = backend.array([[1, 2], [3, 4]])
        xs = [1, 2, 3]
        table = backend.vandermonde(xs, 1)
        direct = backend.batch_eval(coeffs, xs)
        cached = backend.batch_eval(coeffs, vandermonde=table)
        assert direct.tolist() == cached.tolist()

    def test_batch_eval_width_mismatch(self, backend):
        table = backend.vandermonde([1, 2], 1)
        with pytest.raises(ValueError):
            backend.batch_eval(backend.array([[1, 2, 3]]), vandermonde=table)

    def test_batch_eval_needs_points(self, backend):
        with pytest.raises(ValueError):
            backend.batch_eval(backend.array([[1]]))

    def test_lagrange_at_zero_matches_scalar(self, backend):
        f = backend.field
        xs = [1, 2, 4, 7]
        got = backend.lagrange_at_zero(xs).tolist()
        assert got == [c.value for c in lagrange_coefficients(f, xs, 0)]

    def test_interpolate_at_zero_batch(self, backend):
        f = backend.field
        rng = random.Random(16)
        polys = [Polynomial.random(f, 2, rng) for _ in range(30)]
        xs = [1, 2, 3]
        ys = backend.array([[p(x).value for x in xs] for p in polys])
        out = backend.interpolate_at_zero_batch(xs, ys)
        for p, v in zip(polys, out.tolist()):
            assert v == p(0).value

    def test_interpolate_shape_mismatch(self, backend):
        with pytest.raises(ValueError):
            backend.interpolate_at_zero_batch([1, 2], backend.array([[1, 2, 3]]))

    def test_interpolate_1d_rejected(self, backend):
        with pytest.raises(ValueError):
            backend.interpolate_at_zero_batch([1, 2], backend.array([1, 2]))


class TestIdealVSSIntegration:
    def test_vectorized_dealing_matches_scalar_path(self):
        """Same rng seed => identical share tables on both paths."""
        import random as pyrandom

        from repro.vss import IdealVSS

        f = gf2k(16)
        scheme = IdealVSS(f, n=5, t=2)
        secrets = [f(i * 3 + 1) for i in range(64)]  # >= 32: vector path

        session_v = scheme.new_session(pyrandom.Random(0))
        session_v._deal(0, 0, secrets, pyrandom.Random(42))

        session_s = scheme.new_session(pyrandom.Random(0))
        session_s._vector_checked = True  # force the scalar path
        session_s._vector = None
        session_s._deal(0, 0, secrets, pyrandom.Random(42))

        assert session_v._evals == session_s._evals

    def test_small_batches_use_scalar_path(self):
        import random as pyrandom

        from repro.vss import IdealVSS

        f = gf2k(16)
        scheme = IdealVSS(f, n=4, t=1)
        session = scheme.new_session(pyrandom.Random(0))
        session._deal(0, 0, [f(9)], pyrandom.Random(1))
        assert session._evals[0][0] == 9  # the secret at x=0
