"""Tests for univariate polynomial arithmetic and interpolation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import (
    Polynomial,
    PrimeField,
    gf2k,
    interpolate_at,
    lagrange_coefficients,
    lagrange_interpolate,
)


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


@pytest.fixture(scope="module")
def fp():
    return PrimeField(101)


class TestBasics:
    def test_zero(self, f):
        z = Polynomial.zero(f)
        assert z.is_zero()
        assert z.degree == -1
        assert z(5) == f.zero()

    def test_constant(self, f):
        p = Polynomial.constant(f(7))
        assert p.degree == 0
        assert p(123) == f(7)

    def test_normalization(self, f):
        p = Polynomial(f, [f(1), f(0), f(0)])
        assert p.degree == 0

    def test_evaluation_horner(self, fp):
        # p(x) = 3 + 2x + x^2 over GF(101)
        p = Polynomial(fp, [3, 2, 1])
        assert p(0) == fp(3)
        assert p(1) == fp(6)
        assert p(10) == fp(3 + 20 + 100)

    def test_coefficient_access(self, f):
        p = Polynomial(f, [1, 2, 3])
        assert p.coefficient(1) == f(2)
        assert p.coefficient(99) == f.zero()

    def test_evaluate_many(self, fp):
        p = Polynomial(fp, [1, 1])
        assert p.evaluate_many([0, 1, 2]) == [fp(1), fp(2), fp(3)]


class TestArithmetic:
    def test_add_sub(self, fp):
        a = Polynomial(fp, [1, 2, 3])
        b = Polynomial(fp, [4, 5])
        assert (a + b)(7) == fp((1 + 2 * 7 + 3 * 49 + 4 + 5 * 7) % 101)
        assert ((a + b) - b) == a

    def test_mul(self, fp):
        a = Polynomial(fp, [1, 1])  # 1 + x
        b = Polynomial(fp, [1, 100])  # 1 - x
        assert a * b == Polynomial(fp, [1, 0, 100])  # 1 - x^2

    def test_scalar_mul(self, fp):
        a = Polynomial(fp, [1, 2])
        assert a * fp(3) == Polynomial(fp, [3, 6])
        assert 3 * a == Polynomial(fp, [3, 6])

    def test_mul_by_zero_poly(self, f):
        a = Polynomial(f, [1, 2])
        assert (a * Polynomial.zero(f)).is_zero()

    def test_divmod(self, fp):
        a = Polynomial(fp, [2, 3, 1])  # (x+1)(x+2)
        b = Polynomial(fp, [1, 1])
        q, r = a.divmod(b)
        assert r.is_zero()
        assert q == Polynomial(fp, [2, 1])

    def test_divmod_remainder(self, fp):
        a = Polynomial(fp, [5, 0, 1])
        b = Polynomial(fp, [1, 1])
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_div_by_zero(self, fp):
        with pytest.raises(ZeroDivisionError):
            Polynomial(fp, [1]).divmod(Polynomial.zero(fp))

    def test_mixed_fields_rejected(self, f, fp):
        with pytest.raises(ValueError):
            Polynomial(f, [1]) + Polynomial(fp, [1])


class TestRandom:
    def test_fixed_constant(self, f):
        rng = random.Random(42)
        for _ in range(20):
            p = Polynomial.random(f, degree=5, rng=rng, constant=f(99))
            assert p(0) == f(99)
            assert p.degree <= 5

    def test_bad_degree(self, f):
        with pytest.raises(ValueError):
            Polynomial.random(f, degree=-1, rng=random.Random(0))

    def test_distribution_covers_degrees(self, f):
        rng = random.Random(7)
        degrees = {Polynomial.random(f, 3, rng).degree for _ in range(50)}
        assert 3 in degrees


class TestInterpolation:
    def test_roundtrip(self, f):
        rng = random.Random(3)
        p = Polynomial.random(f, degree=4, rng=rng)
        pts = [(f(i), p(i)) for i in range(1, 6)]
        q = lagrange_interpolate(f, pts)
        assert q == p

    def test_interpolate_at_matches_full(self, f):
        rng = random.Random(4)
        p = Polynomial.random(f, degree=3, rng=rng)
        pts = [(f(i), p(i)) for i in range(1, 5)]
        assert interpolate_at(f, pts, 0) == p(0)
        assert interpolate_at(f, pts, f(9)) == p(9)

    def test_duplicate_x_rejected(self, f):
        with pytest.raises(ValueError):
            lagrange_interpolate(f, [(f(1), f(2)), (f(1), f(3))])
        with pytest.raises(ValueError):
            interpolate_at(f, [(1, 2), (1, 3)])

    def test_lagrange_coefficients(self, f):
        rng = random.Random(5)
        p = Polynomial.random(f, degree=3, rng=rng)
        xs = [f(i) for i in range(1, 5)]
        coeffs = lagrange_coefficients(f, xs, 0)
        acc = f.zero()
        for c, x in zip(coeffs, xs):
            acc = acc + c * p(x)
        assert acc == p(0)

    def test_prime_field_interpolation(self, fp):
        pts = [(fp(1), fp(1)), (fp(2), fp(4)), (fp(3), fp(9))]
        q = lagrange_interpolate(fp, pts)
        assert q == Polynomial(fp, [0, 0, 1])  # x^2


@settings(max_examples=60)
@given(
    degree=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10**9),
)
def test_interpolation_recovers_random_polynomial(degree, seed):
    f = gf2k(16)
    rng = random.Random(seed)
    p = Polynomial.random(f, degree=degree, rng=rng)
    pts = [(f(i), p(i)) for i in range(1, degree + 2)]
    assert lagrange_interpolate(f, pts) == p


@settings(max_examples=60)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_poly_ring_axioms(seed):
    f = gf2k(8)
    rng = random.Random(seed)
    a = Polynomial.random(f, 3, rng)
    b = Polynomial.random(f, 3, rng)
    c = Polynomial.random(f, 3, rng)
    assert a * (b + c) == a * b + a * c
    assert (a + b) + c == a + (b + c)
    assert a * b == b * a
