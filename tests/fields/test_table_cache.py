"""Cross-field isolation of the Vandermonde/Lagrange table cache.

The satellite fix of PR 10: :class:`TableCache` keys embed the
:class:`Field` object itself — whose equality covers the concrete type
plus every defining parameter — never a lossy repr.  The collision
vectors pinned down here actually exist in the wild:

- ``GF(2^4)`` has several irreducible reduction polynomials
  (``x^4 + x + 1`` = 19 and ``x^4 + x^3 + 1`` = 25): same ``k``, same
  order, different multiplication — their power tables must not mix;
- ``PrimeField(19)`` and a ``GF2k`` whose modulus encodes as 19 have
  equal-looking moduli reprs in entirely different rings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fields import PrimeField, gf2k
from repro.fields.gf2k import GF2k
from repro.fields.polynomial import lagrange_coefficients
from repro.fields.vectorized import TABLES, TableCache, vector_backend

POINTS = [1, 2, 3, 4]
DEGREE = 2


def _scalar_vandermonde(field, points, degree):
    return [
        [field.pow(x, j) if hasattr(field, "pow") else _pow(field, x, j)
         for j in range(degree + 1)]
        for x in points
    ]


def _pow(field, x, j):
    acc = field.encode(1)
    for _ in range(j):
        acc = field.mul(acc, x)
    return acc


class TestCrossFieldIsolation:
    def test_gf16_different_moduli_get_distinct_vandermonde(self):
        f19 = GF2k(4, modulus=19)  # x^4 + x + 1
        f25 = GF2k(4, modulus=25)  # x^4 + x^3 + 1
        assert f19 != f25
        cache = TableCache()
        t19 = cache.vandermonde(vector_backend(f19), POINTS, DEGREE)
        t25 = cache.vandermonde(vector_backend(f25), POINTS, DEGREE)
        assert cache.misses == 2 and cache.hits == 0
        assert not np.array_equal(t19, t25)
        # Each table is correct against its *own* field's scalar powers.
        for field, table in ((f19, t19), (f25, t25)):
            assert table.tolist() == _scalar_vandermonde(field, POINTS, DEGREE)

    def test_prime_vs_gf2k_equal_modulus_reprs(self):
        """PrimeField(19) and GF2k(4, modulus=19): modulus 19 both, but
        Lagrange coefficients live in different rings."""
        prime = PrimeField(19)
        binary = GF2k(4, modulus=19)
        cache = TableCache()
        xs = (1, 2, 3)
        lp = cache.lagrange_at_zero(prime, xs)
        lb = cache.lagrange_at_zero(binary, xs)
        assert cache.misses == 2 and cache.hits == 0
        assert lp != lb
        for field, coeffs in ((prime, lp), (binary, lb)):
            expected = [
                c.value for c in lagrange_coefficients(field, list(xs), 0)
            ]
            assert coeffs == expected

    def test_same_field_fresh_instance_hits(self):
        """Field equality is by value: a reconstructed field object with
        the same parameters reuses the cached entry."""
        cache = TableCache()
        t1 = cache.vandermonde(vector_backend(gf2k(12)), POINTS, DEGREE)
        t2 = cache.vandermonde(
            vector_backend(GF2k(12, modulus=gf2k(12).modulus)), POINTS, DEGREE
        )
        assert t1 is t2
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_points_and_degrees_are_distinct_entries(self):
        cache = TableCache()
        vec = vector_backend(gf2k(12))
        cache.vandermonde(vec, [1, 2, 3], 2)
        cache.vandermonde(vec, [1, 2, 3], 3)
        cache.vandermonde(vec, [1, 2, 4], 2)
        assert len(cache) == 3 and cache.misses == 3


class TestCacheMechanics:
    def test_global_cache_identity_hit(self):
        vec = vector_backend(gf2k(16))
        points = [11, 22, 33, 44, 55]
        hits0, misses0 = TABLES.hits, TABLES.misses
        t1 = TABLES.vandermonde(vec, points, 3)
        t2 = TABLES.vandermonde(vec, points, 3)
        assert t1 is t2
        assert TABLES.hits >= hits0 + 1 and TABLES.misses >= misses0

    def test_tables_are_read_only(self):
        table = TABLES.vandermonde(vector_backend(gf2k(16)), [9, 8, 7], 2)
        with pytest.raises(ValueError):
            table[0, 0] = 1

    def test_lru_eviction(self):
        cache = TableCache(max_entries=2)
        vec = vector_backend(gf2k(12))
        cache.vandermonde(vec, [1, 2], 1)
        cache.vandermonde(vec, [3, 4], 1)
        cache.vandermonde(vec, [5, 6], 1)  # evicts [1, 2]
        assert len(cache) == 2
        cache.vandermonde(vec, [1, 2], 1)  # rebuilt
        assert cache.misses == 4

    def test_lru_touch_on_hit(self):
        cache = TableCache(max_entries=2)
        vec = vector_backend(gf2k(12))
        cache.vandermonde(vec, [1, 2], 1)
        cache.vandermonde(vec, [3, 4], 1)
        cache.vandermonde(vec, [1, 2], 1)  # touch -> [3, 4] is now LRU
        cache.vandermonde(vec, [5, 6], 1)  # evicts [3, 4]
        cache.vandermonde(vec, [1, 2], 1)  # survived the eviction: hit
        assert cache.hits == 2 and cache.misses == 3

    def test_clear(self):
        cache = TableCache()
        cache.vandermonde(vector_backend(gf2k(12)), [1, 2], 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_lagrange_cached_as_plain_list(self):
        cache = TableCache()
        field = gf2k(12)
        l1 = cache.lagrange_at_zero(field, (1, 2, 3))
        l2 = cache.lagrange_at_zero(field, (1, 2, 3))
        assert l1 is l2
        assert isinstance(l1, list)
        assert all(isinstance(c, int) for c in l1)
