"""Tests for prime fields GF(p) and primality utilities."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import PrimeField, is_prime, next_prime


class TestPrimality:
    def test_small_primes(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41}
        for n in range(2, 43):
            assert is_prime(n) == (n in primes)

    def test_non_primes(self):
        for n in (-1, 0, 1, 4, 100, 561, 1105):  # incl. Carmichael numbers
            assert not is_prime(n)

    def test_large_prime(self):
        assert is_prime(2**61 - 1)  # Mersenne
        assert not is_prime(2**61 + 1)

    def test_next_prime(self):
        assert next_prime(0) == 2
        assert next_prime(14) == 17
        assert next_prime(17) == 17
        assert is_prime(next_prime(10**12))


class TestArithmetic:
    @pytest.fixture(scope="class")
    def f(self):
        return PrimeField(101)

    def test_composite_rejected(self):
        with pytest.raises(ValueError):
            PrimeField(100)

    def test_add_sub_wraparound(self, f):
        assert f.add(60, 60) == 19
        assert f.sub(10, 20) == 91
        assert f.neg(1) == 100
        assert f.neg(0) == 0

    def test_mul_inv(self, f):
        for a in (1, 2, 50, 100):
            assert f.mul(a, f.inv(a)) == 1

    def test_inv_zero(self, f):
        with pytest.raises(ZeroDivisionError):
            f.inv(0)

    def test_pow(self, f):
        assert f.pow(2, 10) == 1024 % 101
        assert f.pow(2, -1) == f.inv(2)
        assert f.pow(5, 100) == 1  # Fermat's little theorem

    def test_encode_negative(self, f):
        assert f.encode(-1) == 100
        assert f.encode(202) == 0

    def test_elements_and_equality(self):
        a = PrimeField(13)
        b = PrimeField(13)
        c = PrimeField(17)
        assert a == b and a != c
        assert a(5) + a(10) == a(2)
        assert hash(a) == hash(b)

    def test_shamir_over_prime_field(self):
        """The sharing layer is field-generic."""
        from repro.sharing import ShamirScheme

        f = PrimeField(97)
        scheme = ShamirScheme(f, n=6, t=2)
        rng = random.Random(0)
        shares = scheme.share(f(42), rng)
        assert scheme.reconstruct_all(shares) == f(42)

    def test_sub_is_not_add(self):
        """Unlike GF(2^k), subtraction differs from addition."""
        f = PrimeField(11)
        assert f.sub(3, 5) != f.add(3, 5)


@settings(max_examples=100)
@given(
    a=st.integers(min_value=0, max_value=100),
    b=st.integers(min_value=0, max_value=100),
    c=st.integers(min_value=0, max_value=100),
)
def test_field_axioms_gf101(a, b, c):
    f = PrimeField(101)
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, f.neg(a)) == 0
    if a:
        assert f.mul(a, f.inv(a)) == 1
