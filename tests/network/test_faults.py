"""Tests for the reusable fault-injection library."""

import random

import pytest

from repro.network import (
    RoundOutput,
    compose_tampers,
    crash_after,
    drop_messages,
    faulty_adversary,
    flip_integers,
    garble_everything,
    only_in_rounds,
    run_protocol,
)


def chatter(pid, n, rounds):
    """Send (pid, round) to everyone each round; collect everything."""
    seen = []
    for r in range(rounds):
        inbox = yield RoundOutput(
            private={j: (pid, r) for j in range(n) if j != pid}
        )
        seen.append(dict(inbox.private))
    return seen


def _run(n, rounds, corrupted, *tampers):
    programs = {pid: chatter(pid, n, rounds) for pid in range(n)}
    adv = faulty_adversary(
        corrupted,
        {pid: chatter(pid, n, rounds) for pid in corrupted},
        *tampers,
    )
    return run_protocol(programs, adversary=adv)


class TestCrashAfter:
    def test_silent_from_given_round(self):
        res = _run(3, 4, {2}, crash_after(2))
        seen = res.outputs[0]
        assert 2 in seen[0] and 2 in seen[1]
        assert 2 not in seen[2] and 2 not in seen[3]

    def test_crash_at_zero_is_fully_silent(self):
        res = _run(3, 2, {2}, crash_after(0))
        assert all(2 not in r for r in res.outputs[0])


class TestDropMessages:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            drop_messages(1.5, random.Random(0))

    def test_drop_all(self):
        res = _run(3, 3, {2}, drop_messages(1.0, random.Random(0)))
        assert all(2 not in r for r in res.outputs[0])

    def test_drop_none(self):
        res = _run(3, 3, {2}, drop_messages(0.0, random.Random(0)))
        assert all(2 in r for r in res.outputs[0])

    def test_partial_drop_rate(self):
        rng = random.Random(1)
        res = _run(4, 40, {3}, drop_messages(0.5, rng))
        received = sum(1 for r in res.outputs[0] if 3 in r)
        assert 8 <= received <= 32  # ~20 expected


class TestGarbleAndFlip:
    def test_garble(self):
        res = _run(3, 1, {2}, garble_everything())
        assert res.outputs[0][0][2] == "garbage"

    def test_flip_integers_tuple(self):
        res = _run(3, 1, {2}, flip_integers(0xFF))
        pid, r = res.outputs[0][0][2]
        assert (pid, r) == (2, 0 ^ 0xFF)

    def test_flip_integers_list(self):
        def prog(pid):
            inbox = yield RoundOutput(private={1 - pid: [1, 2, 3]})
            return inbox.private

        adv = faulty_adversary({1}, {1: prog(1)}, flip_integers(1))
        res = run_protocol({0: prog(0), 1: prog(1)}, adversary=adv)
        assert res.outputs[0][1] == [0, 3, 2]


class TestComposition:
    def test_only_in_rounds(self):
        res = _run(3, 3, {2}, only_in_rounds(garble_everything(), {1}))
        seen = res.outputs[0]
        assert seen[0][2] == (2, 0)
        assert seen[1][2] == "garbage"
        assert seen[2][2] == (2, 2)

    def test_compose_order(self):
        t = compose_tampers(flip_integers(0b01), flip_integers(0b10))
        out = t(0, None, RoundOutput(private={1: 0}))
        assert out.private[1] == 0b11

    def test_faults_against_anonchan(self):
        """Library faults drive a full protocol run (smoke)."""
        from repro.core import AnonChan, scaled_parameters
        from repro.vss import IdealVSS

        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        protocol = AnonChan(params, vss)
        session = vss.new_session(random.Random(0))
        msgs = {i: params.field(50 + i) for i in range(4)}

        def prog(pid):
            return protocol.party_program(
                pid, session, msgs[pid], random.Random(pid)
            )

        adv = faulty_adversary(
            {3},
            {3: prog(3)},
            drop_messages(0.3, random.Random(5)),
            only_in_rounds(flip_integers(0x7), {2, 3}),
        )
        res = run_protocol({pid: prog(pid) for pid in range(4)}, adversary=adv)
        out = res.outputs[0]
        for i in range(3):
            assert out.output[50 + i] >= 1  # honest messages survive
