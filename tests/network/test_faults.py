"""Tests for the reusable fault-injection library."""

import random

import pytest

from repro.network import (
    RoundOutput,
    RushedView,
    compose_tampers,
    crash_after,
    drop_messages,
    faulty_adversary,
    flip_integers,
    garble_everything,
    only_in_rounds,
    run_protocol,
)


def _view(round_index=0):
    return RushedView(round_index=round_index, broadcasts={}, to_corrupted={})


def chatter(pid, n, rounds):
    """Send (pid, round) to everyone each round; collect everything."""
    seen = []
    for r in range(rounds):
        inbox = yield RoundOutput(
            private={j: (pid, r) for j in range(n) if j != pid}
        )
        seen.append(dict(inbox.private))
    return seen


def _run(n, rounds, corrupted, *tampers):
    programs = {pid: chatter(pid, n, rounds) for pid in range(n)}
    adv = faulty_adversary(
        corrupted,
        {pid: chatter(pid, n, rounds) for pid in corrupted},
        *tampers,
    )
    return run_protocol(programs, adversary=adv)


class TestCrashAfter:
    def test_silent_from_given_round(self):
        res = _run(3, 4, {2}, crash_after(2))
        seen = res.outputs[0]
        assert 2 in seen[0] and 2 in seen[1]
        assert 2 not in seen[2] and 2 not in seen[3]

    def test_crash_at_zero_is_fully_silent(self):
        res = _run(3, 2, {2}, crash_after(0))
        assert all(2 not in r for r in res.outputs[0])


class TestDropMessages:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            drop_messages(1.5, random.Random(0))

    def test_drop_all(self):
        res = _run(3, 3, {2}, drop_messages(1.0, random.Random(0)))
        assert all(2 not in r for r in res.outputs[0])

    def test_drop_none(self):
        res = _run(3, 3, {2}, drop_messages(0.0, random.Random(0)))
        assert all(2 in r for r in res.outputs[0])

    def test_partial_drop_rate(self):
        rng = random.Random(1)
        res = _run(4, 40, {3}, drop_messages(0.5, rng))
        received = sum(1 for r in res.outputs[0] if 3 in r)
        assert 8 <= received <= 32  # ~20 expected


class TestGarbleAndFlip:
    def test_garble(self):
        res = _run(3, 1, {2}, garble_everything())
        assert res.outputs[0][0][2] == "garbage"

    def test_flip_integers_tuple(self):
        res = _run(3, 1, {2}, flip_integers(0xFF))
        pid, r = res.outputs[0][0][2]
        assert (pid, r) == (2, 0 ^ 0xFF)

    def test_flip_integers_list(self):
        def prog(pid):
            inbox = yield RoundOutput(private={1 - pid: [1, 2, 3]})
            return inbox.private

        adv = faulty_adversary({1}, {1: prog(1)}, flip_integers(1))
        res = run_protocol({0: prog(0), 1: prog(1)}, adversary=adv)
        assert res.outputs[0][1] == [0, 3, 2]


class TestCrashAfterZeroDirect:
    """crash_after(0): silent from round zero at the tamper level."""

    def test_silences_private_and_broadcast_at_round_zero(self):
        out = RoundOutput(private={0: (9, 9), 1: (9, 9)}, broadcast="hello")
        silenced = crash_after(0)(2, _view(0), out)
        assert silenced.private == {}
        assert silenced.broadcast is None

    def test_never_speaks_in_any_later_round(self):
        t = crash_after(0)
        out = RoundOutput(private={0: 1}, broadcast=2)
        for r in range(5):
            assert t(2, _view(r), out) == RoundOutput.silent()


class TestDropBoundariesDirect:
    """drop_messages at the 0.0 / 1.0 boundaries is exact, not just
    probable: random() lies in [0, 1), so >= 0.0 always keeps and
    >= 1.0 always drops — for every message, every round."""

    def test_probability_zero_keeps_everything(self):
        t = drop_messages(0.0, random.Random(123))
        out = RoundOutput(private={j: (j, j) for j in range(50)})
        for r in range(10):
            assert t(9, _view(r), out).private == out.private

    def test_probability_one_drops_everything(self):
        t = drop_messages(1.0, random.Random(123))
        out = RoundOutput(private={j: (j, j) for j in range(50)})
        for r in range(10):
            assert t(9, _view(r), out).private == {}

    def test_boundaries_preserve_broadcast(self):
        out = RoundOutput(private={0: 1}, broadcast="keepme")
        for p in (0.0, 1.0):
            t = drop_messages(p, random.Random(0))
            assert t(9, _view(), out).broadcast == "keepme"


class TestComposition:
    def test_only_in_rounds(self):
        res = _run(3, 3, {2}, only_in_rounds(garble_everything(), {1}))
        seen = res.outputs[0]
        assert seen[0][2] == (2, 0)
        assert seen[1][2] == "garbage"
        assert seen[2][2] == (2, 2)

    def test_compose_order(self):
        t = compose_tampers(flip_integers(0b01), flip_integers(0b10))
        out = t(0, None, RoundOutput(private={1: 0}))
        assert out.private[1] == 0b11

    def test_compose_applies_left_to_right(self):
        """Non-commutative tampers pin the ordering (XOR masks cannot:
        they commute, so either order would pass the test above)."""

        def double(pid, view, out):
            return RoundOutput(
                private={j: v * 2 for j, v in out.private.items()},
                broadcast=out.broadcast,
            )

        def increment(pid, view, out):
            return RoundOutput(
                private={j: v + 1 for j, v in out.private.items()},
                broadcast=out.broadcast,
            )

        start = RoundOutput(private={1: 3})
        assert compose_tampers(double, increment)(
            0, _view(), start
        ).private[1] == 3 * 2 + 1
        assert compose_tampers(increment, double)(
            0, _view(), start
        ).private[1] == (3 + 1) * 2

    def test_compose_with_crash_is_not_commutative(self):
        """crash-then-garble stays silent; garble-then-crash is also
        silent — but drop-then-flip differs from flip-then-drop only in
        rng stream, so use crash + a payload-adding tamper instead."""

        def add_message(pid, view, out):
            private = dict(out.private)
            private[0] = "extra"
            return RoundOutput(private=private, broadcast=out.broadcast)

        start = RoundOutput(private={1: 3})
        crashed_then_added = compose_tampers(crash_after(0), add_message)(
            2, _view(0), start
        )
        added_then_crashed = compose_tampers(add_message, crash_after(0))(
            2, _view(0), start
        )
        assert crashed_then_added.private == {0: "extra"}
        assert added_then_crashed.private == {}

    def test_faults_against_anonchan(self):
        """Library faults drive a full protocol run (smoke)."""
        from repro.core import AnonChan, scaled_parameters
        from repro.vss import IdealVSS

        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        protocol = AnonChan(params, vss)
        session = vss.new_session(random.Random(0))
        msgs = {i: params.field(50 + i) for i in range(4)}

        def prog(pid):
            return protocol.party_program(
                pid, session, msgs[pid], random.Random(pid)
            )

        adv = faulty_adversary(
            {3},
            {3: prog(3)},
            drop_messages(0.3, random.Random(5)),
            only_in_rounds(flip_integers(0x7), {2, 3}),
        )
        res = run_protocol({pid: prog(pid) for pid in range(4)}, adversary=adv)
        out = res.outputs[0]
        for i in range(3):
            assert out.output[50 + i] >= 1  # honest messages survive
