"""Transport equivalence: the asyncio runtime vs the lockstep reference.

The contract: with the default zero-latency model and no faults, the
async transport is *observably identical* to lockstep — same honest
outputs, same metrics, and byte-identical canonical (timestamp-
stripped) validated schema-v3 traces — on honest, adversarial, and
adaptively-corrupting executions.  Latency jitter may only reorder
deliveries *within* a round, so accounting stays identical even then.
"""

import pytest

from dataclasses import replace

from repro.core import run_anonchan, scaled_parameters
from repro.core.adversaries import jamming_material
from repro.network import (
    Adversary,
    InMemoryAsyncTransport,
    PassiveAdversary,
    RoundOutput,
    run_protocol,
)
from repro.network.runtime import (
    LockstepTransport,
    UniformLatency,
    resolve_transport,
)
from repro.obs import Tracer
from repro.obs.export import canonical_lines, validate_events
from repro.vss import IdealVSS

import random


def _gossip_programs(n: int, rounds: int = 4, seed: int = 0):
    """A chatty synthetic protocol: point-to-point sums + a broadcast."""

    def prog(pid: int):
        rng = random.Random((seed << 8) | pid)
        inbox = yield RoundOutput(
            private={q: [rng.randrange(100)] for q in range(n) if q != pid}
        )
        for _ in range(rounds):
            total = sum(v for vals in inbox.private.values() for v in vals)
            inbox = yield RoundOutput(
                private={q: [total] for q in range(n) if q != pid},
                broadcast=total if pid == 0 else None,
            )
        return sorted((s, tuple(v)) for s, v in inbox.private.items())

    return {pid: prog(pid) for pid in range(n)}


def _traced(transport, programs, adversary=None):
    tracer = Tracer(clock=lambda: 0)
    result = run_protocol(
        programs, adversary=adversary, tracer=tracer, transport=transport
    )
    return result, tracer.events


class TestRunProtocolEquivalence:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_honest_gossip_identical(self, n):
        r_lock, e_lock = _traced("lockstep", _gossip_programs(n, seed=n))
        r_async, e_async = _traced("async", _gossip_programs(n, seed=n))
        assert r_lock.outputs == r_async.outputs
        assert r_lock.metrics == r_async.metrics
        assert canonical_lines(e_lock) == canonical_lines(e_async)
        assert validate_events(e_async) == []

    def test_early_terminating_parties_identical(self):
        n = 5

        def short(pid, lifetime):
            inbox = yield RoundOutput(
                private={q: [pid] for q in range(n) if q != pid}
            )
            for _ in range(lifetime):
                inbox = yield RoundOutput(
                    private={q: [len(inbox.private)] for q in range(n)
                             if q != pid}
                )
            return pid

        def mk():
            return {pid: short(pid, pid) for pid in range(n)}

        r_lock, e_lock = _traced("lockstep", mk())
        r_async, e_async = _traced("async", mk())
        assert r_lock.outputs == r_async.outputs == {
            pid: pid for pid in range(n)
        }
        assert r_lock.metrics == r_async.metrics
        assert canonical_lines(e_lock) == canonical_lines(e_async)

    def test_adaptive_corruption_identical(self):
        n = 5

        class Adaptive(Adversary):
            def __init__(self):
                super().__init__(set())
                self.taken = []

            def maybe_corrupt(self, round_index, total, budget):
                return {1} if round_index == 2 and budget == 0 else set()

            def receive_takeover(self, pid, program, pending):
                self.taken.append((pid, pending is not None))

        r_lock, e_lock = _traced(
            "lockstep", _gossip_programs(n, seed=3), Adaptive()
        )
        r_async, e_async = _traced(
            "async", _gossip_programs(n, seed=3), Adaptive()
        )
        assert r_lock.adversary.taken == r_async.adversary.taken == [(1, True)]
        assert 1 not in r_lock.outputs and 1 not in r_async.outputs
        assert r_lock.outputs == r_async.outputs
        assert r_lock.metrics == r_async.metrics
        assert canonical_lines(e_lock) == canonical_lines(e_async)

    def test_passive_adversary_views_identical(self):
        n = 4

        def mk():
            progs = _gossip_programs(n, seed=9)
            adv = PassiveAdversary({n - 1}, {n - 1: progs[n - 1]})
            return progs, adv

        progs_l, adv_l = mk()
        progs_a, adv_a = mk()
        r_lock, e_lock = _traced("lockstep", progs_l, adv_l)
        r_async, e_async = _traced("async", progs_a, adv_a)
        assert r_lock.outputs == r_async.outputs
        assert r_lock.metrics == r_async.metrics
        assert len(adv_l.views) == len(adv_a.views)
        for view_l, view_a in zip(adv_l.views, adv_a.views):
            assert view_l == view_a
        assert canonical_lines(e_lock) == canonical_lines(e_async)

    def test_jitter_preserves_accounting(self):
        """Jitter reorders within rounds; totals must not move."""
        r_lock, _ = _traced("lockstep", _gossip_programs(6, seed=4))
        jittered = InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=1.0, jitter_ms=10.0), seed=11
        )
        r_jit, e_jit = _traced(jittered, _gossip_programs(6, seed=4))
        # Counts agree with lockstep; only virtual time differs (each
        # jittered round takes at least base_ms).
        assert replace(r_jit.metrics, makespan_ms=0.0) == r_lock.metrics
        assert r_jit.metrics.makespan_ms >= r_jit.metrics.rounds * 1.0
        assert validate_events(e_jit) == []

    def test_jittered_runs_replay_exactly(self):
        def run_once():
            transport = InMemoryAsyncTransport(
                latency=UniformLatency(base_ms=0.5, jitter_ms=8.0), seed=23
            )
            return _traced(transport, _gossip_programs(5, seed=6))

        (r1, e1), (r2, e2) = run_once(), run_once()
        assert r1.outputs == r2.outputs
        assert r1.metrics == r2.metrics
        assert canonical_lines(e1) == canonical_lines(e2)


class TestAnonChanEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_honest_anonchan_identical(self, seed):
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        messages = {i: params.field(100 + i) for i in range(params.n)}

        def run(transport):
            tracer = Tracer(clock=lambda: 0)
            result = run_anonchan(
                params, vss, messages, seed=seed, tracer=tracer,
                transport=transport,
            )
            return result, tracer.events

        r_lock, e_lock = run("lockstep")
        r_async, e_async = run("async")
        assert r_lock.outputs[0].output == r_async.outputs[0].output
        assert r_lock.metrics == r_async.metrics
        assert canonical_lines(e_lock) == canonical_lines(e_async)
        assert validate_events(e_async) == []

    def test_jamming_adversary_identical(self):
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        messages = {i: params.field(100 + i) for i in range(params.n)}

        def run(transport):
            corrupt = {3: jamming_material(params, random.Random(5))}
            tracer = Tracer(clock=lambda: 0)
            result = run_anonchan(
                params, vss, messages, seed=5, corrupt_materials=corrupt,
                tracer=tracer, transport=transport,
            )
            return result, tracer.events

        r_lock, e_lock = run("lockstep")
        r_async, e_async = run("async")
        assert r_lock.outputs[0].output == r_async.outputs[0].output
        assert r_lock.metrics == r_async.metrics
        assert canonical_lines(e_lock) == canonical_lines(e_async)


class TestResolution:
    def test_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_TRANSPORT", raising=False)
        assert isinstance(resolve_transport(None), LockstepTransport)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_TRANSPORT", "async")
        assert isinstance(resolve_transport(None), InMemoryAsyncTransport)

    def test_instance_passthrough(self):
        transport = InMemoryAsyncTransport(seed=3)
        assert resolve_transport(transport) is transport

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon")
