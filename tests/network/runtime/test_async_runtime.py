"""Behavioral tests for the asyncio transport itself.

Covers what the equivalence suite cannot: fault injection (crash,
partition, delay, reorder), max-round enforcement, party-error
propagation, and the accounting property that per-round ``msg``-event
volumes always sum to the ``round`` event's ``elements`` — on both
transports, including under adaptive corruption and parties that
terminate early.
"""

import random
from collections import defaultdict
from dataclasses import replace

import pytest

from repro.network import Adversary, RoundOutput, run_protocol
from repro.network.runtime import (
    Crash,
    Delay,
    InMemoryAsyncTransport,
    Partition,
    ProtocolViolation,
    ReorderWithinRound,
    UniformLatency,
)
from repro.obs import Tracer


def _sum_exchange(n: int, rounds: int = 3):
    """Parties repeatedly exchange order-insensitive sums."""

    def prog(pid: int):
        inbox = yield RoundOutput(
            private={q: [pid + 1] for q in range(n) if q != pid}
        )
        for _ in range(rounds):
            total = sum(v for vals in inbox.private.values() for v in vals)
            inbox = yield RoundOutput(
                private={q: [total] for q in range(n) if q != pid}
            )
        return sum(v for vals in inbox.private.values() for v in vals)

    return {pid: prog(pid) for pid in range(n)}


class TestFaults:
    def test_crash_is_fail_stop(self):
        n = 5
        transport = InMemoryAsyncTransport(faults=(Crash(pid=3, round_index=2),))
        result = run_protocol(_sum_exchange(n), transport=transport)
        assert set(result.outputs) == {0, 1, 2, 4}
        # Survivors keep running on whatever still arrives.
        assert all(isinstance(v, int) for v in result.outputs.values())

    def test_crash_messages_not_counted(self):
        n = 4
        clean = run_protocol(_sum_exchange(n), transport="async")
        crashed = run_protocol(
            _sum_exchange(n),
            transport=InMemoryAsyncTransport(
                faults=(Crash(pid=1, round_index=1),)
            ),
        )
        assert crashed.metrics.field_elements_sent < (
            clean.metrics.field_elements_sent
        )
        assert crashed.metrics.private_messages < clean.metrics.private_messages

    def test_partition_drops_cross_cut_only(self):
        n = 4
        tracer = Tracer(clock=lambda: 0)
        transport = InMemoryAsyncTransport(
            faults=(Partition(group=frozenset({0, 1}), rounds=(1, 3)),)
        )
        result = run_protocol(
            _sum_exchange(n), transport=transport, tracer=tracer
        )
        clean = run_protocol(_sum_exchange(n), transport="async")
        assert result.metrics.field_elements_sent < (
            clean.metrics.field_elements_sent
        )
        # During partitioned rounds no msg event crosses the cut.
        group = {0, 1}
        for ev in tracer.events:
            if ev.kind != "msg" or not (1 <= ev.round_index < 3):
                continue
            sender = ev.attrs["sender"]
            receiver = ev.attrs["receiver"]
            if receiver is None:
                continue
            assert (sender in group) == (receiver in group)

    def test_partition_spares_broadcast(self):
        n = 4

        def prog(pid: int):
            inbox = yield RoundOutput(broadcast=[pid])
            inbox = yield RoundOutput(
                private={q: [pid] for q in range(n) if q != pid},
                broadcast=[pid * 10],
            )
            return (dict(inbox.broadcast), sorted(inbox.private))

        programs = {pid: prog(pid) for pid in range(n)}
        transport = InMemoryAsyncTransport(
            faults=(Partition(group=frozenset({0}), rounds=(0, 10)),)
        )
        result = run_protocol(programs, transport=transport)
        broadcasts, private_senders = result.outputs[0]
        # The isolated party still hears every broadcast...
        assert broadcasts == {pid: [pid * 10] for pid in range(n)}
        # ...but receives no point-to-point traffic across the cut.
        assert private_senders == []

    def test_delay_fault_keeps_outcomes(self):
        n = 4
        delayed = InMemoryAsyncTransport(
            faults=(Delay(delay_ms=50.0, senders=frozenset({2})),)
        )
        r_delayed = run_protocol(_sum_exchange(n), transport=delayed)
        r_clean = run_protocol(_sum_exchange(n), transport="async")
        # Delays reorder arrivals but never drop: same sums, same totals.
        assert r_delayed.outputs == r_clean.outputs
        assert replace(r_delayed.metrics, makespan_ms=0.0) == r_clean.metrics
        # ...but virtual time sees the straggler: each of the two rounds
        # ends on party 2's 50 ms-late deliveries.
        assert r_clean.metrics.makespan_ms == 0.0
        assert r_delayed.metrics.makespan_ms == 100.0

    def test_reorder_within_round_keeps_outcomes(self):
        n = 6
        shuffled = InMemoryAsyncTransport(
            faults=(ReorderWithinRound(),), seed=77
        )
        r_shuf = run_protocol(_sum_exchange(n), transport=shuffled)
        r_clean = run_protocol(_sum_exchange(n), transport="async")
        assert r_shuf.outputs == r_clean.outputs
        assert r_shuf.metrics == r_clean.metrics


class TestProtocolDiscipline:
    def test_max_rounds_enforced(self):
        def forever(n, pid):
            inbox = yield RoundOutput()
            while True:
                inbox = yield RoundOutput()
                del inbox

        programs = {pid: forever(3, pid) for pid in range(3)}
        with pytest.raises(ProtocolViolation, match="exceeded"):
            run_protocol(programs, max_rounds=10, transport="async")

    def test_party_exception_propagates(self):
        def faulty(pid: int):
            inbox = yield RoundOutput(private={1 - pid: [pid]})
            del inbox
            raise RuntimeError(f"party {pid} corrupted its own state")

        programs = {pid: faulty(pid) for pid in range(2)}
        with pytest.raises(RuntimeError, match="corrupted its own state"):
            run_protocol(programs, transport="async")

    def test_rushing_view_sees_honest_round(self):
        n = 3
        seen = []

        class Rusher(Adversary):
            def act(self, view):
                seen.append(dict(view.to_corrupted.get(2, {})))
                return super().act(view)

        lock = run_protocol(
            _sum_exchange(n, rounds=1), adversary=Rusher({2})
        )
        seen_lock, seen[:] = list(seen), []
        result = run_protocol(
            _sum_exchange(n, rounds=1),
            adversary=Rusher({2}),
            transport="async",
        )
        assert result.outputs == lock.outputs
        # Every round the rushing view exposed both honest senders'
        # payloads addressed to the corrupted party, pre-delivery —
        # identically on both transports.
        assert seen and all(set(v) == {0, 1} for v in seen)
        assert seen == seen_lock


def _msg_volume_matches_rounds(events) -> None:
    """Per-round msg-event volume must sum to the round's elements."""
    msg_volume: dict[int, int] = defaultdict(int)
    round_elements: dict[int, int] = {}
    for ev in events:
        if ev.kind == "msg":
            msg_volume[ev.round_index] += ev.attrs["elements"]
        elif ev.kind == "round":
            round_elements[ev.round_index] = ev.attrs["elements"]
    assert round_elements, "no round events recorded"
    for round_index, elements in round_elements.items():
        assert msg_volume.get(round_index, 0) == elements, (
            f"round {round_index}: msg events sum to "
            f"{msg_volume.get(round_index, 0)}, round says {elements}"
        )


class TestAccountingProperty:
    @pytest.mark.parametrize("transport", ["lockstep", "async"])
    @pytest.mark.parametrize("seed", range(6))
    def test_msg_volume_sums_to_round_elements(self, transport, seed):
        """Property: volumes reconcile under adaptive corruption and
        early-terminating parties, with empty and bulk payloads mixed in."""
        rng = random.Random(seed)
        n = rng.randint(3, 6)
        corrupt_round = rng.randrange(4)
        victim = rng.randrange(n)

        def prog(pid: int, lifetime: int):
            mine = random.Random((seed << 8) | pid)
            inbox = yield RoundOutput(
                private={
                    q: [mine.randrange(9)] * mine.randrange(4)
                    for q in range(n)
                    if q != pid
                },
                broadcast=[pid] if mine.random() < 0.5 else None,
            )
            for _ in range(lifetime):
                inbox = yield RoundOutput(
                    private={
                        q: [len(inbox.private)] * mine.randrange(3)
                        for q in range(n)
                        if q != pid
                    }
                )
            return pid

        class Adaptive(Adversary):
            def maybe_corrupt(self, round_index, total, budget):
                if round_index == corrupt_round and budget == 0:
                    return {victim}
                return set()

        programs = {
            pid: prog(pid, rng.randint(1, 5)) for pid in range(n)
        }
        tracer = Tracer(clock=lambda: 0)
        result = run_protocol(
            programs,
            adversary=Adaptive(set()),
            tracer=tracer,
            transport=transport,
        )
        _msg_volume_matches_rounds(tracer.events)
        total = sum(
            ev.attrs["elements"]
            for ev in tracer.events
            if ev.kind == "round"
        )
        assert total == result.metrics.field_elements_sent

    def test_msg_volume_holds_under_async_faults(self):
        """Dropped deliveries are uncounted on both sides of the ledger."""
        n = 5
        tracer = Tracer(clock=lambda: 0)
        transport = InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=1.0, jitter_ms=5.0),
            faults=(
                Partition(group=frozenset({0, 1}), rounds=(1, 2)),
                Crash(pid=4, round_index=2),
            ),
            seed=13,
        )
        run_protocol(_sum_exchange(n, rounds=4), transport=transport,
                     tracer=tracer)
        _msg_volume_matches_rounds(tracer.events)
