"""Regression tests for the shared round engine's accounting.

The size cache must treat a cached size of 0 (empty payloads) as a hit:
the old ``size_cache.get(id(p)) or payload_size(p)`` lookup was falsy
on 0 and silently recomputed, drifting from the ``.get(id(p), 0)``
convention used for msg events.  With the sentinel-based cache,
per-party volumes, msg events, and round totals agree by construction.
"""

from collections import Counter

from repro.network import RoundOutput, run_protocol
from repro.network.runtime import cached_payload_size, engine
from repro.obs import Tracer


def _one_round_programs(empty_payload):
    def sender():
        yield RoundOutput(
            private={1: empty_payload, 2: empty_payload},
            broadcast="done",
        )
        return "sender"

    def sink():
        yield RoundOutput.silent()
        return "sink"

    return {0: sender(), 1: sink(), 2: sink()}


class TestSizeCacheSentinel:
    def test_cached_zero_is_a_hit(self):
        cache: dict[int, int] = {}
        empty: list = []
        assert cached_payload_size(cache, empty) == 0
        assert cache == {id(empty): 0}
        # Poison the cache: a second lookup must return the cached
        # value, not recompute (which would return 0 and mask the miss).
        cache[id(empty)] = 0
        assert cached_payload_size(cache, empty) == 0
        assert len(cache) == 1

    def test_empty_payload_sized_once_per_round(self, monkeypatch):
        """The falsy-zero bug recomputed empty payloads per recipient.

        One empty list delivered to two recipients must be sized exactly
        once for the whole traced round: delivery caches it, and both
        the per-party breakdown and the msg events hit the cache.  The
        pre-fix code called ``payload_size`` once per recipient again in
        the per-party breakdown (cached 0 is falsy under ``or``).
        """
        calls: Counter = Counter()
        real = engine.payload_size

        def counting(payload):
            calls[id(payload)] += 1
            return real(payload)

        monkeypatch.setattr(engine, "payload_size", counting)
        empty: list = []
        tracer = Tracer(clock=lambda: 0)
        run_protocol(_one_round_programs(empty), tracer=tracer)
        assert calls[id(empty)] == 1

    def test_empty_payload_accounting_agrees_by_construction(self):
        """per-party volumes == msg-event volumes == round elements."""
        empty: list = []
        tracer = Tracer(clock=lambda: 0)
        run_protocol(_one_round_programs(empty), tracer=tracer)
        rounds = [e for e in tracer.events if e.kind == "round"]
        msgs = [e for e in tracer.events if e.kind == "msg"]
        assert len(rounds) == 1
        round_elements = rounds[0].attrs["elements"]
        per_party = rounds[0].attrs["per_party"]
        assert round_elements == 2  # broadcast "done" x fan-out 2; lists empty
        assert sum(p["elements"] for p in per_party.values()) == round_elements
        assert sum(e.attrs["elements"] for e in msgs) == round_elements
        # The two empty private deliveries appear as zero-volume events.
        private = [e for e in msgs if e.attrs["receiver"] is not None]
        assert [e.attrs["elements"] for e in private] == [0, 0]
