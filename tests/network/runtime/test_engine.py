"""Regression tests for the shared round engine's accounting.

The size cache must treat a cached size of 0 (empty payloads) as a hit:
the old ``size_cache.get(id(p)) or payload_size(p)`` lookup was falsy
on 0 and silently recomputed, drifting from the ``.get(id(p), 0)``
convention used for msg events.  With the sentinel-based cache,
per-party volumes, msg events, and round totals agree by construction.
"""

from collections import Counter

from repro.network import RoundOutput, run_protocol
from repro.network.runtime import cached_payload_size, engine
from repro.obs import Tracer


def _one_round_programs(empty_payload):
    def sender():
        yield RoundOutput(
            private={1: empty_payload, 2: empty_payload},
            broadcast="done",
        )
        return "sender"

    def sink():
        yield RoundOutput.silent()
        return "sink"

    return {0: sender(), 1: sink(), 2: sink()}


class TestSizeCacheSentinel:
    def test_cached_zero_is_a_hit(self):
        cache: dict[int, int] = {}
        empty: list = []
        assert cached_payload_size(cache, empty) == 0
        assert cache == {id(empty): 0}
        # Poison the cache: a second lookup must return the cached
        # value, not recompute (which would return 0 and mask the miss).
        cache[id(empty)] = 0
        assert cached_payload_size(cache, empty) == 0
        assert len(cache) == 1

    def test_empty_payload_sized_once_per_round(self, monkeypatch):
        """The falsy-zero bug recomputed empty payloads per recipient.

        One empty list delivered to two recipients must be sized exactly
        once for the whole traced round: delivery caches it, and both
        the per-party breakdown and the msg events hit the cache.  The
        pre-fix code called ``payload_size`` once per recipient again in
        the per-party breakdown (cached 0 is falsy under ``or``).
        """
        calls: Counter = Counter()
        real = engine.payload_size

        def counting(payload):
            calls[id(payload)] += 1
            return real(payload)

        monkeypatch.setattr(engine, "payload_size", counting)
        empty: list = []
        tracer = Tracer(clock=lambda: 0)
        run_protocol(_one_round_programs(empty), tracer=tracer)
        assert calls[id(empty)] == 1

    def test_empty_payload_accounting_agrees_by_construction(self):
        """per-party volumes == msg-event volumes == round elements."""
        empty: list = []
        tracer = Tracer(clock=lambda: 0)
        run_protocol(_one_round_programs(empty), tracer=tracer)
        rounds = [e for e in tracer.events if e.kind == "round"]
        msgs = [e for e in tracer.events if e.kind == "msg"]
        assert len(rounds) == 1
        round_elements = rounds[0].attrs["elements"]
        per_party = rounds[0].attrs["per_party"]
        assert round_elements == 2  # broadcast "done" x fan-out 2; lists empty
        assert sum(p["elements"] for p in per_party.values()) == round_elements
        assert sum(e.attrs["elements"] for e in msgs) == round_elements
        # The two empty private deliveries appear as zero-volume events.
        private = [e for e in msgs if e.attrs["receiver"] is not None]
        assert [e.attrs["elements"] for e in private] == [0, 0]


class TestDelaySampling:
    """Sampled per-message delays: persisted on the plan, a function of
    the seed alone, and insertion-order independent."""

    def _outputs(self, order, n=4, inner_reversed=False):
        outs = {}
        for sender in order:
            recipients = [r for r in range(n) if r != sender]
            if inner_reversed:
                recipients.reverse()
            outs[sender] = RoundOutput(
                private={r: [sender, r] for r in recipients}
            )
        return outs

    def test_delays_are_seed_deterministic_and_order_independent(self):
        """Same seed, any dict insertion order -> identical offsets.

        ``sample_delays`` iterates sorted (sender, recipient) pairs, so
        the rng stream never depends on how the outputs dicts happened
        to be built."""
        import random as _random

        from repro.network.runtime import UniformLatency
        from repro.network.runtime.engine import (
            compute_delivery,
            sample_delays,
        )

        model = UniformLatency(base_ms=1.0, jitter_ms=9.0)
        shapes = [
            ([0, 1, 2, 3], False),
            ([3, 1, 0, 2], False),
            ([2, 0, 3, 1], True),
        ]
        sampled = []
        for order, inner_reversed in shapes:
            outs = self._outputs(order, inner_reversed=inner_reversed)
            delivery = compute_delivery(outs, range(4), True)
            sampled.append(
                sample_delays(
                    _random.Random(42), model, (), 0, outs, delivery, True
                )
            )
        assert sampled[0] == sampled[1] == sampled[2]
        assert set(sampled[0]) == {
            (s, r) for s in range(4) for r in range(4) if s != r
        }
        assert all(1.0 <= d <= 10.0 for d in sampled[0].values())

    def test_different_seeds_sample_different_delays(self):
        import random as _random

        from repro.network.runtime import UniformLatency
        from repro.network.runtime.engine import (
            compute_delivery,
            sample_delays,
        )

        model = UniformLatency(base_ms=1.0, jitter_ms=9.0)
        outs = self._outputs([0, 1, 2, 3])
        delivery = compute_delivery(outs, range(4), True)
        a = sample_delays(_random.Random(1), model, (), 0, outs, delivery, True)
        b = sample_delays(_random.Random(2), model, (), 0, outs, delivery, True)
        assert a != b

    def test_link_fault_delay_folds_into_persisted_offset(self):
        """The persisted offset is the message's complete transit time."""
        import random as _random

        from repro.network.runtime import FixedLatency
        from repro.network.runtime.engine import (
            compute_delivery,
            sample_delays,
        )
        from repro.network.runtime.models import Delay

        fault = Delay(
            delay_ms=7.0, senders=frozenset({0}), recipients=frozenset({2})
        )
        outs = self._outputs([0, 1, 2, 3])
        delivery = compute_delivery(outs, range(4), True)
        delays = sample_delays(
            _random.Random(0), FixedLatency(base_ms=2.0), (fault,),
            0, outs, delivery, True,
        )
        assert delays[(0, 2)] == 9.0
        assert all(
            d == 2.0 for pair, d in delays.items() if pair != (0, 2)
        )

    def test_persisted_delays_surface_as_trace_stamps(self):
        """End to end: every private msg event's t_recv - t_send equals
        the fixed link latency the transport sampled and persisted."""
        from repro.network.runtime import FixedLatency, InMemoryAsyncTransport

        n = 4

        def prog(pid):
            inbox = yield RoundOutput(
                private={q: [pid] for q in range(n) if q != pid}
            )
            yield RoundOutput(
                private={q: [len(inbox.private)] for q in range(n)
                         if q != pid}
            )
            return pid

        tracer = Tracer(clock=lambda: 0)
        run_protocol(
            {pid: prog(pid) for pid in range(n)},
            tracer=tracer,
            transport=InMemoryAsyncTransport(
                latency=FixedLatency(base_ms=2.5), seed=0
            ),
        )
        private = [
            ev for ev in tracer.events
            if ev.kind == "msg" and ev.attrs.get("receiver") is not None
        ]
        assert private
        for ev in private:
            assert ev.attrs["t_recv"] - ev.attrs["t_send"] == 2.5

    def test_equal_delays_preserve_lockstep_arrival_order(self):
        """Fixed latency ties every delay, so the (delay, seq) sort
        falls back to sender order and inboxes iterate exactly as under
        lockstep — arrival order is part of the reproducibility story."""
        from repro.network.runtime import FixedLatency, InMemoryAsyncTransport

        n = 5

        def order_probe(pid):
            inbox = yield RoundOutput(
                private={q: [pid] for q in range(n) if q != pid}
            )
            return list(inbox.private)

        def mk():
            return {pid: order_probe(pid) for pid in range(n)}

        lock = run_protocol(mk())
        fixed = run_protocol(
            mk(),
            transport=InMemoryAsyncTransport(
                latency=FixedLatency(base_ms=3.0), seed=9
            ),
        )
        assert lock.outputs == fixed.outputs
