"""Tests for the synchronous simulator, programs, and adversaries."""

import pytest

from repro.network import (
    Adversary,
    PassiveAdversary,
    ProtocolViolation,
    RoundOutput,
    SilentAdversary,
    TamperingAdversary,
    parallel,
    payload_size,
    run_protocol,
    sequence,
    silent_rounds,
)


def echo_program(pid, n, value):
    """Round 1: send value to everyone privately; return what was received."""
    inbox = yield RoundOutput(private={j: value for j in range(n) if j != pid})
    return dict(inbox.private)


def broadcast_program(pid, n, value):
    """Round 1: broadcast value; return the broadcast map received."""
    inbox = yield RoundOutput(broadcast=value)
    return dict(inbox.broadcast)


class TestBasicDelivery:
    def test_private_exchange(self):
        n = 4
        programs = {i: echo_program(i, n, f"msg{i}") for i in range(n)}
        result = run_protocol(programs)
        for i in range(n):
            expected = {j: f"msg{j}" for j in range(n) if j != i}
            assert result.outputs[i] == expected

    def test_broadcast_consistency(self):
        n = 5
        programs = {i: broadcast_program(i, n, i * 10) for i in range(n)}
        result = run_protocol(programs)
        views = list(result.outputs.values())
        assert all(v == views[0] for v in views)
        assert views[0] == {i: i * 10 for i in range(n)}

    def test_message_to_unknown_party_dropped(self):
        def prog():
            yield RoundOutput(private={99: "x"})
            return "done"

        result = run_protocol({0: prog()})
        assert result.outputs[0] == "done"

    def test_immediate_return(self):
        def prog():
            return 42
            yield  # pragma: no cover

        result = run_protocol({0: prog()})
        assert result.outputs[0] == 42
        assert result.metrics.rounds == 0


class TestMetrics:
    def test_round_counting(self):
        n = 3
        programs = {i: silent_rounds(4) for i in range(n)}
        result = run_protocol(programs)
        assert result.metrics.rounds == 4
        assert result.metrics.broadcast_rounds == 0

    def test_broadcast_round_counting(self):
        def prog(pid):
            yield RoundOutput()  # silent round
            yield RoundOutput(broadcast="hello")
            yield RoundOutput()

        result = run_protocol({i: prog(i) for i in range(3)})
        assert result.metrics.rounds == 3
        assert result.metrics.broadcast_rounds == 1
        assert result.metrics.broadcasts_sent == 3

    def test_message_counting(self):
        n = 4
        programs = {i: echo_program(i, n, 7) for i in range(n)}
        result = run_protocol(programs)
        assert result.metrics.private_messages == n * (n - 1)

    def test_merge(self):
        from repro.network import ProtocolMetrics

        a = ProtocolMetrics(rounds=2, broadcast_rounds=1, broadcasts_sent=3)
        b = ProtocolMetrics(rounds=5, broadcast_rounds=0)
        m = a.merge(b)
        assert m.rounds == 7
        assert m.broadcast_rounds == 1
        assert "rounds=7" in m.summary()

    def test_merge_carries_extra(self):
        from repro.network import ProtocolMetrics

        a = ProtocolMetrics(rounds=1, extra={"a": 1, "note": "x", "ok": True})
        b = ProtocolMetrics(rounds=1, extra={"a": 2, "b": 3, "note": "y"})
        merged = a.merge(b)
        # Numeric extras shared by both operands add (bools excluded);
        # everything else keeps the right-hand operand's value.
        assert merged.extra == {"a": 3, "b": 3, "note": "y", "ok": True}
        # Neither operand is mutated.
        assert a.extra == {"a": 1, "note": "x", "ok": True}
        assert b.extra == {"a": 2, "b": 3, "note": "y"}

    def test_merge_bool_numeric_collision_keeps_later_value(self):
        from repro.network import ProtocolMetrics

        # bool is an int subclass, but flags are not costs: a collision
        # between a bool and a number must NOT add them (True + 1 == 2
        # would silently corrupt the ledger) — later execution wins.
        a = ProtocolMetrics(extra={"flag": True, "count": 1})
        b = ProtocolMetrics(extra={"flag": 1, "count": False})
        assert a.merge(b).extra == {"flag": 1, "count": False}
        assert b.merge(a).extra == {"flag": True, "count": 1}

    def test_record_round_rejects_negative_counts(self):
        import pytest

        from repro.network import ProtocolMetrics

        m = ProtocolMetrics()
        for bad in [(-1, 0, 0), (0, -2, 0), (0, 0, -3)]:
            with pytest.raises(ValueError, match="non-negative"):
                m.record_round(*bad)
        # Rejected rounds leave the ledger untouched.
        assert m == ProtocolMetrics()
        m.record_round(0, 0, 0)
        assert m.rounds == 1

    def test_max_rounds_guard(self):
        def forever():
            while True:
                yield RoundOutput()

        with pytest.raises(ProtocolViolation):
            run_protocol({0: forever()}, max_rounds=10)


class TestParallelComposition:
    def test_two_subprotocols(self):
        n = 3

        def party(pid):
            result = yield from parallel(
                {
                    "a": echo_program(pid, n, f"a{pid}"),
                    "b": broadcast_program(pid, n, f"b{pid}"),
                }
            )
            return result

        result = run_protocol({i: party(i) for i in range(n)})
        assert result.metrics.rounds == 1  # both subprotocols share the round
        out0 = result.outputs[0]
        assert out0["a"] == {1: "a1", 2: "a2"}
        assert out0["b"] == {0: "b0", 1: "b1", 2: "b2"}

    def test_unequal_lengths(self):
        def short(pid):
            yield RoundOutput(broadcast=("s", pid))
            return "short-done"

        def long(pid):
            yield RoundOutput()
            inbox = yield RoundOutput(broadcast=("l", pid))
            return sorted(inbox.broadcast)

        def party(pid):
            return (yield from parallel({"s": short(pid), "l": long(pid)}))

        result = run_protocol({i: party(i) for i in range(3)})
        assert result.metrics.rounds == 2
        assert result.outputs[0]["s"] == "short-done"
        assert result.outputs[0]["l"] == [0, 1, 2]

    def test_nested_parallel(self):
        n = 2

        def party(pid):
            inner = parallel(
                {
                    "x": echo_program(pid, n, f"x{pid}"),
                    "y": echo_program(pid, n, f"y{pid}"),
                }
            )
            result = yield from parallel({"inner": inner, "z": silent_rounds(1)})
            return result

        result = run_protocol({i: party(i) for i in range(n)})
        assert result.metrics.rounds == 1
        assert result.outputs[0]["inner"]["x"] == {1: "x1"}
        assert result.outputs[0]["inner"]["y"] == {1: "y1"}

    def test_sequence(self):
        def party(pid):
            return (
                yield from sequence(
                    broadcast_program(pid, 2, "r1"),
                    broadcast_program(pid, 2, "r2"),
                )
            )

        result = run_protocol({i: party(i) for i in range(2)})
        assert result.metrics.rounds == 2
        assert result.outputs[0] == [{0: "r1", 1: "r1"}, {0: "r2", 1: "r2"}]


class TestAdversaries:
    def test_silent_adversary(self):
        n = 4
        programs = {i: echo_program(i, n, f"m{i}") for i in range(n)}
        result = run_protocol(programs, adversary=SilentAdversary({3}))
        # Party 3 sent nothing; honest parties see only each other.
        assert result.outputs[0] == {1: "m1", 2: "m2"}
        assert 3 not in result.outputs

    def test_passive_adversary_follows_protocol(self):
        n = 4
        programs = {i: echo_program(i, n, f"m{i}") for i in range(n)}
        adv = PassiveAdversary({3}, {3: echo_program(3, n, "m3")})
        result = run_protocol(programs, adversary=adv)
        assert result.outputs[0] == {1: "m1", 2: "m2", 3: "m3"}
        # The adversary recorded party 3's view.
        assert adv.views[0][3].private == {0: "m0", 1: "m1", 2: "m2"}

    def test_tampering_adversary(self):
        n = 3
        programs = {i: broadcast_program(i, n, i) for i in range(n)}

        def tamper(pid, view, out):
            return RoundOutput(broadcast=999)

        adv = TamperingAdversary(
            {2}, {2: broadcast_program(2, n, 2)}, tamper
        )
        result = run_protocol(programs, adversary=adv)
        assert result.outputs[0][2] == 999
        assert result.outputs[0] == result.outputs[1]  # broadcast consistent

    def test_rushing_sees_honest_broadcasts(self):
        """Corrupted output can depend on honest same-round broadcasts."""
        n = 3
        programs = {i: broadcast_program(i, n, i * 7) for i in range(n)}
        observed = {}

        class Rusher(Adversary):
            def act(self, view):
                observed.update(view.broadcasts)
                total = sum(view.broadcasts.values())
                return {2: RoundOutput(broadcast=total)}

        result = run_protocol(programs, adversary=Rusher({2}))
        assert observed == {0: 0, 1: 7}
        assert result.outputs[0][2] == 7  # adversary echoed the honest sum

    def test_rushing_cannot_see_honest_private_traffic(self):
        seen = []

        def secret_exchange(pid):
            inbox = yield RoundOutput(private={1 - pid: "secret"})
            return dict(inbox.private)

        class Spy(Adversary):
            def act(self, view):
                seen.append(dict(view.to_corrupted[2]))
                return {2: RoundOutput()}

        programs = {0: secret_exchange(0), 1: secret_exchange(1), 2: silent_rounds(1)}
        run_protocol(programs, adversary=Spy({2}))
        assert seen == [{}]  # nothing addressed to the corrupted party

    def test_adversary_output_for_honest_party_rejected(self):
        class Bad(Adversary):
            def act(self, view):
                return {0: RoundOutput(), 1: RoundOutput()}

        programs = {i: silent_rounds(1) for i in range(3)}
        with pytest.raises(ProtocolViolation):
            run_protocol(programs, adversary=Bad({1}))

    def test_unknown_corrupted_party_rejected(self):
        with pytest.raises(ValueError):
            run_protocol({0: silent_rounds(1)}, adversary=SilentAdversary({5}))

    def test_adaptive_corruption(self):
        n = 3

        class Adaptive(Adversary):
            def maybe_corrupt(self, round_index, total, used):
                return {1} if round_index == 1 else set()

        def prog(pid):
            for r in range(3):
                yield RoundOutput(broadcast=(pid, r))
            return "ok"

        adv = Adaptive(set())
        result = run_protocol({i: prog(i) for i in range(n)}, adversary=adv)
        # Party 1 was taken over after round 1 and stopped broadcasting.
        assert 1 not in result.outputs
        assert result.outputs[0] == "ok"
        assert 1 in adv.corrupted


class TestPayloadSize:
    def test_atoms(self):
        from repro.fields import gf2k

        assert payload_size(None) == 0
        assert payload_size(5) == 1
        assert payload_size(gf2k(8)(3)) == 1

    def test_containers(self):
        assert payload_size([1, 2, 3]) == 3
        # Dict keys count as wire payload too: "a" + [1, 2] + "b" + 3.
        assert payload_size({"a": [1, 2], "b": 3}) == 5
        assert payload_size((None, 1)) == 1

    def test_dict_keys_counted(self):
        # Structured keys carry real atoms — a labelled broadcast like
        # {("deal", 3): "vss-share"} costs 2 (key) + 1 (value).
        assert payload_size({("deal", 3): "vss-share"}) == 3
        assert payload_size({0: None}) == 1
        assert payload_size({None: None}) == 0
        assert payload_size({(1, 2): (3, 4), "tag": []}) == 5

    def test_polynomial(self):
        from repro.fields import Polynomial, gf2k

        f = gf2k(8)
        assert payload_size(Polynomial(f, [1, 2, 3])) == 3

    def test_dataclass(self):
        from repro.sharing import Share
        from repro.fields import gf2k

        f = gf2k(8)
        assert payload_size(Share(f(1), f(2))) == 2


class TestElementCountingToggle:
    def test_count_elements_disabled(self):
        def prog(pid):
            inbox = yield RoundOutput(
                private={1 - pid: [1, 2, 3]}, broadcast=[4, 5]
            )
            return len(inbox.private)

        result = run_protocol(
            {0: prog(0), 1: prog(1)}, count_elements=False
        )
        assert result.metrics.field_elements_sent == 0
        assert result.metrics.private_messages == 2  # still counted
        assert result.metrics.broadcast_rounds == 1

    def test_count_elements_default_on(self):
        def prog(pid):
            yield RoundOutput(private={1 - pid: [1, 2, 3]})
            return None

        result = run_protocol({0: prog(0), 1: prog(1)})
        assert result.metrics.field_elements_sent == 6
