"""Tests for the ideal-functionality VSS backend."""

import random

import pytest

from repro.fields import gf2k
from repro.vss import (
    DEALER_DISQUALIFIED,
    GGOR13_COST,
    REFUSE,
    IdealVSS,
    ReconstructionError,
    VSSCost,
    combine_views,
)

from .harness import share_and_open, sum_across_dealers


@pytest.fixture
def scheme():
    return IdealVSS(gf2k(16), n=5, t=2)


class TestShareOpen:
    def test_single_dealer_roundtrip(self, scheme):
        f = scheme.field
        result, _ = share_and_open(scheme, {0: [f(11), f(22)]})
        for pid, out in result.outputs.items():
            assert out[0] == [f(11), f(22)]

    def test_all_dealers_parallel(self, scheme):
        f = scheme.field
        secrets = {d: [f(100 + d)] for d in range(scheme.n)}
        result, _ = share_and_open(scheme, secrets)
        for out in result.outputs.values():
            for d in range(scheme.n):
                assert out[d] == [f(100 + d)]

    def test_parallel_sharing_costs_one_share_phase(self, scheme):
        f = scheme.field
        secrets = {d: [f(d)] for d in range(scheme.n)}
        result, _ = share_and_open(scheme, secrets)
        # share rounds (cost profile) + 1 opening round
        assert result.metrics.rounds == scheme.cost.share_rounds + 1

    def test_refusing_dealer_disqualified(self, scheme):
        f = scheme.field
        result, _ = share_and_open(scheme, {0: REFUSE, 1: [f(5)]})
        for out in result.outputs.values():
            assert out[0] is DEALER_DISQUALIFIED
            assert out[1] == [f(5)]

    def test_dealer_wrong_count_rejected(self, scheme):
        f = scheme.field
        session = scheme.new_session(random.Random(0))
        prog = session.share_program(0, 0, [f(1), f(2)], random.Random(0), count=1)
        with pytest.raises(ValueError):
            next(prog)


class TestCostProfiles:
    def test_ggor13_profile_metrics(self):
        f = gf2k(16)
        scheme = IdealVSS(f, n=5, t=2, cost=GGOR13_COST)
        result, _ = share_and_open(scheme, {0: [f(7)]})
        assert result.metrics.rounds == 21 + 1
        assert result.metrics.broadcast_rounds == 2

    def test_default_cost(self):
        scheme = IdealVSS(gf2k(16), n=5, t=2)
        assert scheme.cost.share_rounds == 1

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            VSSCost(share_rounds=1, share_broadcast_rounds=2)


class TestLinearity:
    def test_sum_across_dealers(self, scheme):
        f = scheme.field
        secrets = {d: [f(10 * (d + 1))] for d in range(scheme.n)}
        result, _ = sum_across_dealers(scheme, secrets)
        expected = f.sum([s[0] for s in secrets.values()])
        for out in result.outputs.values():
            assert out == expected

    def test_scaled_combination(self, scheme):
        f = scheme.field
        session = scheme.new_session(random.Random(0))
        from repro.network import parallel, run_protocol

        def party(pid, rng):
            batches = yield from parallel(
                {
                    d: session.share_program(
                        pid, d, [f(d + 1)] if pid == d else None, rng, count=1
                    )
                    for d in range(2)
                }
            )
            combo = combine_views(
                [batches[0][0], batches[1][0]], [f(3), f(5)]
            )
            values = yield from session.open_program(pid, [combo])
            return values[0]

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(scheme.n)}
        )
        expected = f(3) * f(1) + f(5) * f(2)
        for out in result.outputs.values():
            assert out == expected

    def test_zero_view_identity(self, scheme):
        session = scheme.new_session(random.Random(0))
        z = session.zero_view(0)
        assert (z + z).value == 0
        assert z.scale(scheme.field(7)).value == 0

    def test_mixed_party_views_rejected(self, scheme):
        session = scheme.new_session(random.Random(0))
        with pytest.raises(ValueError):
            _ = session.zero_view(0) + session.zero_view(1)


class TestBackends:
    """Backend selection: identical semantics, different execution."""

    def test_invalid_scheme_backend(self):
        with pytest.raises(ValueError, match="backend"):
            IdealVSS(gf2k(16), n=5, t=2, backend="gpu")

    def test_configure_backend_validates(self, scheme):
        session = scheme.new_session(random.Random(0))
        with pytest.raises(ValueError, match="backend"):
            session.configure_backend("gpu")

    def test_configure_vectorized_on_unsupported_field(self):
        # gf2k(33) exceeds the carryless kernel width: no substrate.
        session = IdealVSS(gf2k(33), n=5, t=2).new_session(random.Random(0))
        with pytest.raises(ValueError):
            session.configure_backend("vectorized")

    def test_vectorized_scheme_on_unsupported_field(self):
        scheme = IdealVSS(gf2k(33), n=5, t=2, backend="vectorized")
        with pytest.raises(ValueError):
            scheme.new_session(random.Random(0))

    def test_auto_on_unsupported_field_falls_back(self):
        f = gf2k(33)
        scheme = IdealVSS(f, n=5, t=2)  # auto: silently scalar
        result, _ = share_and_open(scheme, {0: [f(v) for v in range(40)]})
        for out in result.outputs.values():
            assert out[0] == [f(v) for v in range(40)]

    @pytest.mark.parametrize("count", [1, 100])
    def test_open_backends_agree(self, count):
        f = gf2k(16)
        secrets = {0: [f((v * 7 + 1) % f.order) for v in range(count)]}
        outputs = {}
        for backend in ("scalar", "vectorized"):
            scheme = IdealVSS(f, n=5, t=2, backend=backend)
            result, _ = share_and_open(scheme, secrets)
            outputs[backend] = {
                pid: out[0] for pid, out in result.outputs.items()
            }
        assert outputs["scalar"] == outputs["vectorized"]
        assert outputs["scalar"][0] == secrets[0]


class TestPrivateBatchReconstruction:
    """The batch form of the paper's step-4 private reconstruction."""

    def _share_batch(self, scheme, values, seed=1):
        from repro.network import run_protocol

        f = scheme.field
        secrets = [f(v) for v in values]
        session = scheme.new_session(random.Random(seed))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, secrets if pid == 0 else None, rng,
                count=len(secrets),
            )
            return batch

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(scheme.n)}
        )
        columns = {
            pid: [session.reveal_payload(pid, v) for v in batch.views]
            for pid, batch in result.outputs.items()
        }
        receiver_views = list(result.outputs[0].views)
        return session, columns, receiver_views, secrets

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_honest_columns_reconstruct(self, backend):
        scheme = IdealVSS(gf2k(16), n=5, t=2, backend=backend)
        session, columns, views, secrets = self._share_batch(
            scheme, range(70)
        )
        opened = session.reconstruct_private_batch(
            columns, count=len(secrets), verifier=0, views=views
        )
        assert opened == secrets

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_corrupted_position_yields_none(self, backend):
        scheme = IdealVSS(gf2k(16), n=5, t=2, backend=backend)
        session, columns, views, secrets = self._share_batch(
            scheme, range(70)
        )
        # A minority of forged payloads at position 3 is corrected...
        for pid in (1, 2):
            sender, terms, value = columns[pid][3]
            columns[pid][3] = (sender, terms, value ^ 1)
        opened = session.reconstruct_private_batch(
            columns, count=len(secrets), verifier=0, views=views
        )
        assert opened == secrets
        # ...but losing the quorum (3 of 5 forged) only kills position 3.
        sender, terms, value = columns[3][3]
        columns[3][3] = (sender, terms, value ^ 1)
        opened = session.reconstruct_private_batch(
            columns, count=len(secrets), verifier=0, views=views
        )
        assert opened[3] is None
        assert opened[:3] + opened[4:] == secrets[:3] + secrets[4:]

    def test_generic_path_without_views(self):
        scheme = IdealVSS(gf2k(16), n=5, t=2)
        session, columns, _views, secrets = self._share_batch(
            scheme, range(10)
        )
        opened = session.reconstruct_private_batch(
            columns, count=len(secrets), verifier=0
        )
        assert opened == secrets


class TestVerification:
    """The functionality enforces what real VSS guarantees w.h.p."""

    def _setup_payloads(self, scheme, secret_value=99, seed=1):
        from repro.network import run_protocol

        f = scheme.field
        session = scheme.new_session(random.Random(seed))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, [f(secret_value)] if pid == 0 else None, rng, count=1
            )
            return batch

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(scheme.n)}
        )
        payloads = {
            pid: session.reveal_payload(pid, batch[0])
            for pid, batch in result.outputs.items()
        }
        return session, payloads

    def test_honest_payloads_reconstruct(self, scheme):
        session, payloads = self._setup_payloads(scheme)
        assert session.verify_and_combine(payloads) == scheme.field(99)

    def test_forged_share_value_ignored(self, scheme):
        session, payloads = self._setup_payloads(scheme)
        pid, terms, value = payloads[3]
        payloads[3] = (pid, terms, value ^ 1)
        assert session.verify_and_combine(payloads) == scheme.field(99)

    def test_misattributed_payload_ignored(self, scheme):
        session, payloads = self._setup_payloads(scheme)
        payloads[3] = payloads[2]  # party 3 replays party 2's payload
        assert session.verify_and_combine(payloads) == scheme.field(99)

    def test_garbage_terms_ignored(self, scheme):
        session, payloads = self._setup_payloads(scheme)
        payloads[3] = (3, ((999999, 1),), 0)
        assert session.verify_and_combine(payloads) == scheme.field(99)

    def test_too_few_payloads_raises(self, scheme):
        session, payloads = self._setup_payloads(scheme)
        few = {pid: payloads[pid] for pid in list(payloads)[: scheme.t]}
        with pytest.raises(ReconstructionError):
            session.verify_and_combine(few)

    def test_private_reconstruction_at_receiver(self, scheme):
        """Only the receiver collects payloads -> only it learns the value."""
        session, payloads = self._setup_payloads(scheme, secret_value=123)
        # Receiver-side local combine (no interaction needed).
        assert session.verify_and_combine(payloads) == scheme.field(123)
