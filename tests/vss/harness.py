"""Shared helpers for driving VSS executions in tests."""

import random

from repro.network import run_protocol
from repro.vss import combine_views


def share_and_open(
    scheme,
    secrets_by_dealer,
    adversary=None,
    seed=0,
    corrupt_programs=None,
):
    """Run: every dealer shares its batch in parallel, then open everything.

    ``secrets_by_dealer`` maps dealer id -> list of FieldElements.
    Returns (ExecutionResult, session).  Each honest party's output is a
    dict: dealer -> list of reconstructed values (or DEALER_DISQUALIFIED).
    """
    from repro.network import parallel
    from repro.vss import DEALER_DISQUALIFIED

    session = scheme.new_session(random.Random(seed))
    counts = {
        d: len(s) if hasattr(s, "__len__") else 1
        for d, s in secrets_by_dealer.items()
    }

    def party(pid, rng):
        batches = yield from parallel(
            {
                ("share", d): session.share_program(
                    pid,
                    d,
                    secrets_by_dealer[d] if pid == d else None,
                    rng,
                    count=counts[d],
                )
                for d in secrets_by_dealer
            }
        )
        open_views = []
        labels = []
        for d in sorted(secrets_by_dealer):
            batch = batches[("share", d)]
            if batch is DEALER_DISQUALIFIED:
                continue
            for k, view in enumerate(batch.views):
                open_views.append(view)
                labels.append((d, k))
        values = yield from session.open_program(pid, open_views)
        out = {
            d: (
                DEALER_DISQUALIFIED
                if batches[("share", d)] is DEALER_DISQUALIFIED
                else [None] * counts[d]
            )
            for d in secrets_by_dealer
        }
        for (d, k), v in zip(labels, values):
            out[d][k] = v
        return out

    programs = {
        pid: party(pid, random.Random(seed * 1000 + pid))
        for pid in range(scheme.n)
    }
    if corrupt_programs:
        from repro.network import PassiveAdversary

        adversary = PassiveAdversary(set(corrupt_programs), corrupt_programs)
    result = run_protocol(programs, adversary=adversary)
    return result, session


def sum_across_dealers(scheme, secrets_by_dealer, seed=0):
    """Share batches from several dealers, open only the cross-dealer sum."""
    from repro.network import parallel
    from repro.vss import DEALER_DISQUALIFIED

    session = scheme.new_session(random.Random(seed))
    counts = {
        d: len(s) if hasattr(s, "__len__") else 1
        for d, s in secrets_by_dealer.items()
    }

    def party(pid, rng):
        batches = yield from parallel(
            {
                d: session.share_program(
                    pid,
                    d,
                    secrets_by_dealer[d] if pid == d else None,
                    rng,
                    count=counts[d],
                )
                for d in secrets_by_dealer
            }
        )
        views = [
            batches[d][0]
            for d in sorted(secrets_by_dealer)
            if batches[d] is not DEALER_DISQUALIFIED
        ]
        total = combine_views(views)
        values = yield from session.open_program(pid, [total])
        return values[0]

    programs = {
        pid: party(pid, random.Random(seed * 1000 + pid))
        for pid in range(scheme.n)
    }
    return run_protocol(programs), session
