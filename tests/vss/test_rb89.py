"""Tests for the executable statistical VSS (t < n/2)."""

import random

import pytest

from repro.fields import gf2k
from repro.network import (
    RoundOutput,
    SilentAdversary,
    TamperingAdversary,
    run_protocol,
)
from repro.vss import DEALER_DISQUALIFIED, RB89VSS, ReconstructionError

from .harness import share_and_open, sum_across_dealers


@pytest.fixture
def scheme():
    # n=5, t=2: an honest-majority setting perfect VSS cannot handle
    # (3t = 6 > n) — exactly the paper's regime.
    return RB89VSS(gf2k(16), n=5, t=2)


def _run_single(scheme, secrets, adversary=None, seed=0):
    session = scheme.new_session(random.Random(seed))

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, secrets if pid == 0 else None, rng, count=len(secrets)
        )
        if batch is DEALER_DISQUALIFIED:
            return DEALER_DISQUALIFIED
        values = yield from session.open_program(pid, batch.views)
        return values

    programs = {
        pid: party(pid, random.Random(seed * 91 + pid))
        for pid in range(scheme.n)
    }
    return run_protocol(programs, adversary=adversary), session


class TestHonest:
    def test_roundtrip_beyond_perfect_threshold(self, scheme):
        f = scheme.field
        result, _ = _run_single(scheme, [f(1234), f(5678)])
        for out in result.outputs.values():
            assert out == [f(1234), f(5678)]

    def test_fast_path_costs(self, scheme):
        f = scheme.field
        result, _ = _run_single(scheme, [f(9)])
        assert result.metrics.rounds == 4  # 3 share + 1 open
        assert result.metrics.broadcast_rounds == 0

    def test_parallel_dealers(self, scheme):
        f = scheme.field
        secrets = {d: [f(10 + d)] for d in range(scheme.n)}
        result, _ = share_and_open(scheme, secrets)
        for out in result.outputs.values():
            for d in range(scheme.n):
                assert out[d] == [f(10 + d)]

    def test_cross_dealer_sum(self, scheme):
        f = scheme.field
        secrets = {d: [f(3 * (d + 1))] for d in range(scheme.n)}
        result, _ = sum_across_dealers(scheme, secrets)
        expected = f.sum([s[0] for s in secrets.values()])
        for out in result.outputs.values():
            assert out == expected

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RB89VSS(gf2k(16), n=4, t=2)


class TestRobustness:
    def test_lying_shareholders_rejected_by_icp(self, scheme):
        """t=2 corrupted parties flip their revealed shares; the MACs
        reject them and everyone still reconstructs correctly —
        impossible without authentication at n=5, t=2."""
        f = scheme.field
        corrupted = {3, 4}
        session = scheme.new_session(random.Random(5))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, [f(777)] if pid == 0 else None, rng, count=1
            )
            values = yield from session.open_program(pid, batch.views)
            return values[0]

        def tamper(pid, view, out):
            if not out.private:
                return out
            tampered = {}
            for j, payload in out.private.items():
                if isinstance(payload, list) and payload and isinstance(payload[0], tuple):
                    # flip the claimed share value in every payload
                    tampered[j] = [
                        (p[0], p[1], p[2] ^ 0x1234, p[3])
                        if isinstance(p, tuple) and len(p) == 4
                        else p
                        for p in payload
                    ]
                else:
                    tampered[j] = payload
            return RoundOutput(private=tampered, broadcast=out.broadcast)

        programs = {
            pid: party(pid, random.Random(pid)) for pid in range(scheme.n)
        }
        adv_programs = {
            pid: party(pid, random.Random(pid)) for pid in corrupted
        }
        adv = TamperingAdversary(corrupted, adv_programs, tamper)
        result = run_protocol(programs, adversary=adv)
        for pid in range(3):
            assert result.outputs[pid] == f(777)

    def test_withholding_parties(self, scheme):
        f = scheme.field
        result, _ = _run_single(
            scheme, [f(55)], adversary=SilentAdversary({3, 4})
        )
        for pid in range(3):
            assert result.outputs[pid] == [f(55)]

    def test_silent_dealer_disqualified(self, scheme):
        f = scheme.field
        result, _ = _run_single(
            scheme, [f(1)], adversary=SilentAdversary({0})
        )
        for pid in range(1, scheme.n):
            assert result.outputs[pid] is DEALER_DISQUALIFIED

    def test_too_few_payloads(self, scheme):
        session = scheme.new_session(random.Random(0))
        with pytest.raises(ReconstructionError):
            session.verify_and_combine({0: None}, verifier=1)


class TestLinearity:
    def test_scaled_combination(self, scheme):
        from repro.network import parallel
        from repro.vss import combine_views

        f = scheme.field
        session = scheme.new_session(random.Random(1))

        def party(pid, rng):
            batches = yield from parallel(
                {
                    d: session.share_program(
                        pid, d, [f(d + 1)] if pid == d else None, rng, count=1
                    )
                    for d in range(2)
                }
            )
            combo = combine_views([batches[0][0], batches[1][0]], [f(3), f(5)])
            values = yield from session.open_program(pid, [combo])
            return values[0]

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(scheme.n)}
        )
        expected = f(3) * f(1) + f(5) * f(2)
        for out in result.outputs.values():
            assert out == expected

    def test_same_dealer_batch_sum(self, scheme):
        from repro.vss import combine_views

        f = scheme.field
        session = scheme.new_session(random.Random(2))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, [f(10), f(20), f(30)] if pid == 0 else None, rng, count=3
            )
            total = combine_views(list(batch.views))
            values = yield from session.open_program(pid, [total])
            return values[0]

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(scheme.n)}
        )
        for out in result.outputs.values():
            assert out == f(10) + f(20) + f(30)


class TestAnonChanOverRB89:
    def test_public_openings_end_to_end(self):
        """AnonChan's public reconstruction steps work over the
        statistical backend at t < n/2 (the anonymity-critical private
        step 4 runs on the ideal/perfect backends; see DESIGN.md)."""
        from repro.core import DealerLayout, honest_material, scaled_parameters

        params = scaled_parameters(n=5, t=2, d=4, num_checks=2, kappa=16, margin=4)
        scheme = RB89VSS(params.field, params.n, params.t)
        session = scheme.new_session(random.Random(3))
        layout = DealerLayout(params)
        material = honest_material(params, params.field(42), random.Random(4))
        secrets = layout.build_secrets(material)

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, secrets if pid == 0 else None, rng, count=layout.total
            )
            # Open the challenge share publicly (step 2's shape).
            values = yield from session.open_program(
                pid, [batch[layout.challenge()]]
            )
            return values[0]

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(params.n)}
        )
        for out in result.outputs.values():
            assert out == material.challenge_share
