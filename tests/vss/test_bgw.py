"""Tests for the executable perfect VSS (t < n/3), incl. attack runs."""

import random

import pytest

from repro.fields import Polynomial, gf2k
from repro.network import (
    PassiveAdversary,
    RoundOutput,
    TamperingAdversary,
    parallel,
    run_protocol,
)
from repro.sharing import SymmetricBivariate
from repro.vss import BGWVSS, DEALER_DISQUALIFIED, ReconstructionError

from .harness import share_and_open, sum_across_dealers


@pytest.fixture
def scheme():
    return BGWVSS(gf2k(16), n=4, t=1)


@pytest.fixture
def scheme7():
    return BGWVSS(gf2k(16), n=7, t=2)


def _honest_party(session, pid, dealer, secrets, rng, count):
    """Share one batch, then publicly open all of its values."""

    def prog():
        batch = yield from session.share_program(
            pid, dealer, secrets if pid == dealer else None, rng, count=count
        )
        if batch is DEALER_DISQUALIFIED:
            return DEALER_DISQUALIFIED
        values = yield from session.open_program(pid, batch.views)
        return values

    return prog()


def _run(scheme, dealer, secrets, adversary=None, seed=0, overrides=None):
    session = scheme.new_session(random.Random(seed))
    programs = {}
    for pid in range(scheme.n):
        rng = random.Random(seed * 100 + pid)
        programs[pid] = _honest_party(
            session, pid, dealer, secrets, rng, len(secrets)
        )
    if overrides:
        for pid, prog in overrides.items():
            programs[pid] = prog(session)
    result = run_protocol(programs, adversary=adversary)
    return result, session


class TestHonestExecution:
    def test_roundtrip(self, scheme):
        f = scheme.field
        result, _ = _run(scheme, dealer=0, secrets=[f(321)])
        for out in result.outputs.values():
            assert out == [f(321)]

    def test_batch_roundtrip(self, scheme7):
        f = scheme7.field
        secrets = [f(v) for v in (1, 2, 3, 4, 5)]
        result, _ = _run(scheme7, dealer=3, secrets=secrets)
        for out in result.outputs.values():
            assert out == secrets

    def test_fast_path_costs(self, scheme):
        """Honest dealer: 3 sharing rounds, 0 broadcast rounds, +1 to open."""
        f = scheme.field
        result, _ = _run(scheme, dealer=0, secrets=[f(5)])
        assert result.metrics.rounds == 4
        assert result.metrics.broadcast_rounds == 0

    def test_parallel_dealers(self, scheme):
        f = scheme.field
        secrets = {d: [f(10 + d)] for d in range(scheme.n)}
        result, _ = share_and_open(scheme, secrets)
        for out in result.outputs.values():
            for d in range(scheme.n):
                assert out[d] == [f(10 + d)]

    def test_cross_dealer_sum(self, scheme):
        f = scheme.field
        secrets = {d: [f(7 * (d + 1))] for d in range(scheme.n)}
        result, _ = sum_across_dealers(scheme, secrets)
        expected = f.sum([s[0] for s in secrets.values()])
        for out in result.outputs.values():
            assert out == expected

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BGWVSS(gf2k(16), n=6, t=2)


class TestRobustReconstruction:
    def test_corrupt_party_lies_at_opening(self, scheme7):
        """t corrupted parties flip their opened shares; BW absorbs it."""
        f = scheme7.field
        corrupted = {5, 6}

        def tamper(pid, view, out):
            if not out.private:
                return out
            return RoundOutput(
                private={
                    j: [v ^ 12345 if isinstance(v, int) else v for v in payload]
                    if isinstance(payload, list)
                    else payload
                    for j, payload in out.private.items()
                },
                broadcast=out.broadcast,
            )

        session = scheme7.new_session(random.Random(0))
        programs = {
            pid: _honest_party(
                session, pid, 0, [f(999)], random.Random(pid), 1
            )
            for pid in range(scheme7.n)
        }
        adv_programs = {
            pid: _honest_party(session, pid, 0, [f(999)], random.Random(pid), 1)
            for pid in corrupted
        }
        adv = TamperingAdversary(corrupted, adv_programs, tamper)
        result = run_protocol(programs, adversary=adv)
        for pid, out in result.outputs.items():
            assert out == [f(999)]

    def test_withholding_parties(self, scheme7):
        from repro.network import SilentAdversary

        f = scheme7.field
        result, _ = _run(
            scheme7, dealer=0, secrets=[f(55)], adversary=SilentAdversary({5, 6})
        )
        for out in result.outputs.values():
            assert out == [f(55)]

    def test_verify_and_combine_needs_quorum(self, scheme):
        session = scheme.new_session(random.Random(0))
        with pytest.raises(ReconstructionError):
            session.verify_and_combine({0: 1})

    def test_verify_and_combine_filters_garbage(self, scheme7):
        """Non-integer payloads are ignored, not fatal."""
        f = scheme7.field
        session = scheme7.new_session(random.Random(1))
        from repro.fields import Polynomial as P

        poly = P.random(f, scheme7.t, random.Random(2), constant=f(42))
        payloads = {pid: poly(pid + 1).value for pid in range(scheme7.n)}
        payloads[6] = "garbage"
        payloads[5] = None
        assert session.verify_and_combine(payloads) == f(42)


def _make_tampering_dealer(victim, resolve_honestly, secrets):
    """A dealer that hands ``victim`` a corrupted row in round 1.

    If ``resolve_honestly`` it afterwards answers complaints and
    accusations with the true polynomial (should stay qualified); if not
    it answers the accusation with a garbage row (must be disqualified).
    """

    def factory(session):
        def prog():
            scheme = session.scheme
            field = scheme.field
            n, t = scheme.n, scheme.t
            pid = 0  # dealer id in these tests
            rng = random.Random(12321)
            bivs = [
                SymmetricBivariate.random(field, t, s, rng) for s in secrets
            ]
            true_rows = {
                j: [b.row(j + 1) for b in bivs] for j in range(n)
            }
            msgs = dict(true_rows)
            msgs[victim] = [
                r + Polynomial(field, [1]) for r in true_rows[victim]
            ]
            yield RoundOutput(
                private={j: msgs[j] for j in range(n) if j != pid}
            )
            # R2: crossings from the true polynomials.
            inbox = yield RoundOutput(
                private={
                    j: [b(pid + 1, j + 1).value for b in bivs]
                    for j in range(n)
                    if j != pid
                }
            )
            # R3: dealer has nothing to complain about.
            inbox = yield RoundOutput()
            complaints = {
                s: p for s, p in inbox.broadcast.items() if isinstance(p, list)
            }
            if not complaints:
                return None
            # R4: resolve with true values.
            resolutions = {"values": {}, "rows": {}}
            for complainer, items in complaints.items():
                for kind, arg in items:
                    if kind == "bad-row":
                        resolutions["rows"][complainer] = true_rows[complainer]
                    elif kind == "cross":
                        for k, b in enumerate(bivs):
                            resolutions["values"][(k, complainer, arg)] = b(
                                complainer + 1, arg + 1
                            ).value
            inbox = yield RoundOutput(broadcast=resolutions)
            unhappy = set(resolutions["rows"])
            while True:
                inbox = yield RoundOutput()
                new = {
                    s
                    for s, p in inbox.broadcast.items()
                    if p == "accuse" and s not in unhappy
                }
                if not new:
                    break
                unhappy |= new
                if resolve_honestly:
                    answer = {m: true_rows[m] for m in new}
                else:
                    answer = {
                        m: [
                            Polynomial(field, [99] * (t + 1))
                            for _ in secrets
                        ]
                        for m in new
                    }
                inbox = yield RoundOutput(broadcast=answer)
            return None

        return prog()

    return factory


class TestMaliciousDealer:
    def test_silent_dealer_disqualified(self, scheme):
        from repro.network import SilentAdversary

        f = scheme.field
        result, _ = _run(
            scheme, dealer=0, secrets=[f(1)], adversary=SilentAdversary({0})
        )
        for out in result.outputs.values():
            assert out is DEALER_DISQUALIFIED

    def test_inconsistent_row_resolved_honestly(self, scheme):
        """Dealer corrupts one row but answers truthfully: stays qualified,
        and all honest parties reconstruct the committed value."""
        f = scheme.field
        secrets = [f(246)]
        factory = _make_tampering_dealer(
            victim=2, resolve_honestly=True, secrets=secrets
        )
        session = scheme.new_session(random.Random(0))
        programs = {
            pid: _honest_party(session, pid, 0, None, random.Random(pid), 1)
            for pid in range(1, scheme.n)
        }
        programs[0] = factory(session)
        adv = PassiveAdversary({0}, {0: programs[0]})
        # Give the honest runner a placeholder for party 0 (adversary speaks).
        result = run_protocol(programs, adversary=adv)
        outs = [result.outputs[pid] for pid in range(1, scheme.n)]
        assert all(o == outs[0] for o in outs)
        assert outs[0] == [f(246)]

    def test_inconsistent_row_resolved_with_garbage(self, scheme):
        """Dealer answers the accusation with a garbage row: disqualified."""
        f = scheme.field
        secrets = [f(246)]
        factory = _make_tampering_dealer(
            victim=2, resolve_honestly=False, secrets=secrets
        )
        session = scheme.new_session(random.Random(0))
        programs = {
            pid: _honest_party(session, pid, 0, None, random.Random(pid), 1)
            for pid in range(1, scheme.n)
        }
        programs[0] = factory(session)
        adv = PassiveAdversary({0}, {0: programs[0]})
        result = run_protocol(programs, adversary=adv)
        for pid in range(1, scheme.n):
            assert result.outputs[pid] is DEALER_DISQUALIFIED

    def test_verdict_agreement_under_attack(self, scheme7):
        """All honest parties always agree on the sharing verdict."""
        f = scheme7.field
        for resolve in (True, False):
            factory = _make_tampering_dealer(
                victim=4, resolve_honestly=resolve, secrets=[f(13)]
            )
            session = scheme7.new_session(random.Random(1))
            programs = {
                pid: _honest_party(
                    session, pid, 0, None, random.Random(pid), 1
                )
                for pid in range(1, scheme7.n)
            }
            programs[0] = factory(session)
            adv = PassiveAdversary({0}, {0: programs[0]})
            result = run_protocol(programs, adversary=adv)
            outs = [result.outputs[pid] for pid in range(1, scheme7.n)]
            assert all(
                (o is DEALER_DISQUALIFIED) == (outs[0] is DEALER_DISQUALIFIED)
                for o in outs
            )
            if outs[0] is not DEALER_DISQUALIFIED:
                assert all(o == outs[0] for o in outs)


class TestFalseComplaints:
    def test_false_complaint_about_honest_dealer(self, scheme):
        """A corrupted party complains falsely; the dealer survives and the
        secret still reconstructs (at the cost of extra rounds)."""
        f = scheme.field
        secrets = [f(88)]

        def tamper(pid, view, out):
            if view.round_index == 2:  # the complaint round
                return RoundOutput(
                    private=out.private, broadcast=[("cross", 1)]
                )
            return out

        session = scheme.new_session(random.Random(3))
        programs = {
            pid: _honest_party(session, pid, 0, secrets, random.Random(pid), 1)
            for pid in range(scheme.n)
        }
        adv = TamperingAdversary(
            {3},
            {3: _honest_party(session, 3, 0, None, random.Random(3), 1)},
            tamper,
        )
        result = run_protocol(programs, adversary=adv)
        for pid in range(scheme.n - 1):
            assert result.outputs[pid] == [f(88)]
        assert result.metrics.rounds > 4  # slower than the fast path
        assert result.metrics.broadcast_rounds >= 1
