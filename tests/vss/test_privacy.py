"""Statistical privacy tests for the VSS backends.

VSS Privacy (paper §2.2): if the dealer is honest, the adversary's
sharing-phase view is (statistically) independent of the secret.  We
corrupt ``t`` parties passively, share two different secrets many
times, and compare the corrupted coalition's received-share
distributions.
"""

import random

import pytest

from repro.fields import gf2k
from repro.network import PassiveAdversary, run_protocol
from repro.vss import BGWVSS, IdealVSS, RB89VSS


def _corrupt_share_values(scheme, secret, trials, seed):
    """The corrupted coalition's share values across many dealings."""
    values = []
    corrupted = {scheme.n - 1}
    for trial in range(trials):
        session = scheme.new_session(random.Random(seed * 7919 + trial))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, [secret] if pid == 0 else None, rng, count=1
            )
            return batch

        programs = {
            pid: party(pid, random.Random(trial * 100 + pid))
            for pid in range(scheme.n)
        }
        adv = PassiveAdversary(
            corrupted,
            {
                pid: party(pid, random.Random(trial * 100 + pid))
                for pid in corrupted
            },
        )
        run_protocol(programs, adversary=adv)
        batch = adv.results[scheme.n - 1]
        values.append(batch[0].value)
    return values


@pytest.mark.parametrize(
    "make_scheme",
    [
        lambda f: IdealVSS(f, n=4, t=1),
        lambda f: BGWVSS(f, n=4, t=1),
        lambda f: RB89VSS(f, n=5, t=2),
    ],
    ids=["ideal", "bgw", "rb89"],
)
def test_corrupt_share_distribution_independent_of_secret(make_scheme):
    """The corrupted party's share covers the field identically for two
    very different secrets (coverage test over a small field)."""
    f = gf2k(4)  # 16 elements: coverage is checkable with a few hundred runs
    scheme = make_scheme(f)
    trials = 200
    seen_a = set(_corrupt_share_values(scheme, f(0), trials, seed=1))
    seen_b = set(_corrupt_share_values(scheme, f(9), trials, seed=2))
    assert seen_a == set(range(16))
    assert seen_b == set(range(16))


def test_pre_reconstruction_view_has_no_secret_bgw():
    """A single share (degree t >= 1) determines nothing: for a fixed
    received share value, every secret remains possible.  We check the
    converse direction by conditioning: over many dealings of secret s,
    the share value takes (almost) every field value."""
    f = gf2k(4)
    scheme = BGWVSS(f, n=4, t=1)
    values = _corrupt_share_values(scheme, f(5), trials=300, seed=3)
    # Rough uniformity: each of the 16 values appears, none dominates.
    from collections import Counter

    counts = Counter(values)
    assert set(counts) == set(range(16))
    assert max(counts.values()) < 3 * 300 / 16
