"""Property-based tests across the VSS backends."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import gf2k
from repro.network import run_protocol
from repro.vss import BGWVSS, IdealVSS, RB89VSS, combine_views

from tests.strategies import seeds, values16


def _share_open(scheme, secrets, seed):
    session = scheme.new_session(random.Random(seed))

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, secrets if pid == 0 else None, rng, count=len(secrets)
        )
        values = yield from session.open_program(pid, batch.views)
        return values

    programs = {
        pid: party(pid, random.Random(seed * 11 + pid))
        for pid in range(scheme.n)
    }
    return run_protocol(programs).outputs


@pytest.mark.parametrize(
    "make_scheme",
    [
        lambda f: IdealVSS(f, n=4, t=1),
        lambda f: BGWVSS(f, n=4, t=1),
        lambda f: RB89VSS(f, n=5, t=2),
    ],
    ids=["ideal", "bgw", "rb89"],
)
@settings(max_examples=12, deadline=None)
@given(a=values16, b=values16, seed=seeds)
def test_share_open_roundtrip_property(make_scheme, a, b, seed):
    f = gf2k(16)
    scheme = make_scheme(f)
    outputs = _share_open(scheme, [f(a), f(b)], seed)
    for out in outputs.values():
        assert out == [f(a), f(b)]


@pytest.mark.parametrize(
    "make_scheme",
    [
        lambda f: IdealVSS(f, n=4, t=1),
        lambda f: BGWVSS(f, n=4, t=1),
        lambda f: RB89VSS(f, n=5, t=2),
    ],
    ids=["ideal", "bgw", "rb89"],
)
@settings(max_examples=10, deadline=None)
@given(
    values=st.lists(values16, min_size=2, max_size=4),
    coeffs=st.lists(values16, min_size=2, max_size=4),
    seed=seeds,
)
def test_linearity_property(make_scheme, values, coeffs, seed):
    """Opening a random linear combination equals the combination of
    the secrets, for every backend."""
    f = gf2k(16)
    size = min(len(values), len(coeffs))
    values, coeffs = values[:size], coeffs[:size]
    scheme = make_scheme(f)
    session = scheme.new_session(random.Random(seed))
    secrets = [f(v) for v in values]
    scalars = [f(c) for c in coeffs]

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, secrets if pid == 0 else None, rng, count=size
        )
        combo = combine_views(list(batch.views), scalars)
        opened = yield from session.open_program(pid, [combo])
        return opened[0]

    programs = {
        pid: party(pid, random.Random(seed * 13 + pid))
        for pid in range(scheme.n)
    }
    outputs = run_protocol(programs).outputs
    expected = f.sum([c * s for c, s in zip(scalars, secrets)])
    for out in outputs.values():
        assert out == expected
