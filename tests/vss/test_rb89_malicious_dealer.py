"""Malicious-dealer scenarios for the statistical VSS backend."""

import random

import pytest

from repro.fields import Polynomial, gf2k
from repro.network import RoundOutput, TamperingAdversary, run_protocol
from repro.vss import DEALER_DISQUALIFIED, RB89VSS


@pytest.fixture
def scheme():
    return RB89VSS(gf2k(16), n=5, t=2)


def _run_with_dealer_tamper(scheme, tamper, secret=777, seed=0):
    f = scheme.field
    session = scheme.new_session(random.Random(seed))

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, [f(secret)] if pid == 0 else None, rng, count=1
        )
        if batch is DEALER_DISQUALIFIED:
            return DEALER_DISQUALIFIED
        values = yield from session.open_program(pid, batch.views)
        return values[0]

    programs = {
        pid: party(pid, random.Random(seed * 13 + pid))
        for pid in range(scheme.n)
    }
    adv = TamperingAdversary(
        {0}, {0: party(0, random.Random(seed * 13))}, tamper
    )
    return run_protocol(programs, adversary=adv)


def _corrupt_row_tamper(victim, field):
    """Round-1 tamper: hand the victim a shifted row (ICP data intact)."""

    def tamper(pid, view, out):
        if view.round_index != 0 or victim not in out.private:
            return out
        payload = out.private[victim]
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return out
        rows, tags = payload
        bad_rows = [r + Polynomial(field, [1]) for r in rows]
        private = dict(out.private)
        private[victim] = (bad_rows, tags)
        return RoundOutput(private=private, broadcast=out.broadcast)

    return tamper


class TestMaliciousDealer:
    def test_tampered_row_resolved_by_complaints(self, scheme):
        """The victim's crossings mismatch everyone; the (internally
        honest) dealer resolves truthfully, the victim adopts its public
        row, and the committed secret still reconstructs."""
        f = scheme.field
        result = _run_with_dealer_tamper(
            scheme, _corrupt_row_tamper(victim=2, field=f), secret=777, seed=1
        )
        outs = [result.outputs[p] for p in range(1, scheme.n)]
        assert all(o == outs[0] for o in outs)
        assert outs[0] == f(777)
        # Complaints forced extra (broadcast) rounds beyond the fast path.
        assert result.metrics.rounds > 4
        assert result.metrics.broadcast_rounds >= 1

    def test_dealer_goes_silent_after_complaints(self, scheme):
        """Tampered row + no resolution: public disqualification."""
        f = scheme.field
        row_tamper = _corrupt_row_tamper(victim=2, field=f)

        def tamper(pid, view, out):
            if view.round_index >= 3:  # the resolution round onwards
                return RoundOutput.silent()
            return row_tamper(pid, view, out)

        result = _run_with_dealer_tamper(scheme, tamper, seed=2)
        for pid in range(1, scheme.n):
            assert result.outputs[pid] is DEALER_DISQUALIFIED

    def test_verdict_agreement(self, scheme):
        """Honest parties always agree on qualified-vs-disqualified."""
        f = scheme.field
        for seed in range(3):
            result = _run_with_dealer_tamper(
                scheme, _corrupt_row_tamper(victim=1 + seed, field=f), seed=seed + 5
            )
            verdicts = [
                result.outputs[p] is DEALER_DISQUALIFIED
                for p in range(1, scheme.n)
            ]
            assert len(set(verdicts)) == 1
