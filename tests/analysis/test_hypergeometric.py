"""Tests for the hypergeometric tail machinery behind Claim 2."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    chvatal_tail_bound,
    collision_tail_bound,
    expected_pairwise_collisions,
    hypergeometric_pmf,
    hypergeometric_tail,
    paper_c_for_budget,
    paper_collision_budget,
    paper_tail_bound,
)


class TestPmf:
    def test_sums_to_one(self):
        total = sum(
            hypergeometric_pmf(20, 7, 5, k) for k in range(0, 6)
        )
        assert total == pytest.approx(1.0)

    def test_known_value(self):
        # Pr[X=1] for (N=10, K=4, n=3): C(4,1)C(6,2)/C(10,3) = 60/120 = 0.5
        assert hypergeometric_pmf(10, 4, 3, 1) == pytest.approx(0.5)

    def test_out_of_support(self):
        assert hypergeometric_pmf(10, 4, 3, 4) == 0.0
        assert hypergeometric_pmf(10, 4, 3, -1) == 0.0

    def test_mean(self):
        n_pop, k_succ, draws = 50, 10, 12
        mean = sum(
            k * hypergeometric_pmf(n_pop, k_succ, draws, k)
            for k in range(0, draws + 1)
        )
        assert mean == pytest.approx(draws * k_succ / n_pop)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rv = scipy_stats.hypergeom(40, 9, 11)
        for k in range(0, 10):
            assert hypergeometric_pmf(40, 9, 11, k) == pytest.approx(
                rv.pmf(k), abs=1e-12
            )


class TestTail:
    def test_tail_is_complement(self):
        assert hypergeometric_tail(20, 7, 5, 0) == pytest.approx(1.0)

    def test_tail_monotone(self):
        tails = [hypergeometric_tail(30, 10, 8, k) for k in range(9)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))

    def test_chvatal_bounds_exact_tail(self):
        """The Chvátal/Hoeffding bound dominates the exact tail."""
        for k in range(3, 9):
            exact = hypergeometric_tail(100, 20, 8, k)
            bound = chvatal_tail_bound(100, 20, 8, k)
            assert bound >= exact - 1e-12

    def test_chvatal_trivial_below_mean(self):
        assert chvatal_tail_bound(100, 50, 10, 2) == 1.0


class TestPaperBound:
    def test_budget_formula(self):
        n, d, ell = 5, 16, 640
        c = 0.05
        assert paper_collision_budget(n, d, ell, c) == pytest.approx(
            25 * (256 / 640 + 0.05 * 16)
        )

    def test_c_inversion(self):
        n, d, ell = 5, 16, 640
        c = paper_c_for_budget(n, d, ell, budget=d / 2)
        assert paper_collision_budget(n, d, ell, c) == pytest.approx(d / 2)

    def test_tail_bound_formula(self):
        assert paper_tail_bound(4, 100, 1000, 0.2) == pytest.approx(
            16 * math.exp(-0.04 * 100)
        )

    def test_paper_choice_satisfies_both(self):
        """C = 1/(4 n^2), d = n^4 kappa, l = 4 n^6 kappa (proof of Thm 1)."""
        n, kappa = 4, 8
        d, ell = n**4 * kappa, 4 * n**6 * kappa
        c = 1 / (4 * n**2)
        assert paper_collision_budget(n, d, ell, c) == pytest.approx(d / 2)
        assert c * c * d == pytest.approx(kappa / 16)

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            paper_tail_bound(4, 10, 100, -0.1)


class TestMonteCarlo:
    """Claim 2 validated against simulation (the E3 experiment in small)."""

    @staticmethod
    def _total_collisions(n, d, ell, rng):
        sets = [frozenset(rng.sample(range(ell), d)) for _ in range(n)]
        return sum(
            len(sets[i] & sets[j])
            for i in range(n)
            for j in range(n)
            if i != j
        )

    def test_expectation_matches(self):
        n, d, ell = 4, 8, 256
        rng = random.Random(0)
        trials = 400
        mean = (
            sum(self._total_collisions(n, d, ell, rng) for _ in range(trials))
            / trials
        )
        expected = expected_pairwise_collisions(n, d, ell)
        assert mean == pytest.approx(expected, rel=0.25)

    def test_tail_bound_holds_empirically(self):
        n, d, ell = 4, 8, 256
        rng = random.Random(1)
        c = 0.25
        budget = paper_collision_budget(n, d, ell, c)
        bound = paper_tail_bound(n, d, ell, c)
        trials = 300
        exceed = sum(
            self._total_collisions(n, d, ell, rng) >= budget
            for _ in range(trials)
        )
        assert exceed / trials <= min(1.0, bound) + 0.05

    def test_per_party_bound_holds_empirically(self):
        n, d, ell = 5, 8, 320
        rng = random.Random(2)
        bound = collision_tail_bound(n, d, ell, budget=d / 2)
        trials = 400
        bad = 0
        for _ in range(trials):
            sets = [frozenset(rng.sample(range(ell), d)) for _ in range(n)]
            others = set().union(*sets[1:])
            if len(sets[0] & others) >= d / 2:
                bad += 1
        assert bad / trials <= bound + 0.05


@settings(max_examples=40)
@given(
    pop=st.integers(min_value=10, max_value=200),
    succ=st.integers(min_value=1, max_value=9),
    draws=st.integers(min_value=1, max_value=9),
    k=st.integers(min_value=0, max_value=9),
)
def test_tail_bounded_by_one_and_nonneg(pop, succ, draws, k):
    tail = hypergeometric_tail(pop, succ, draws, k)
    assert 0.0 <= tail <= 1.0 + 1e-12
    kk = max(k, 1)
    assert chvatal_tail_bound(pop, succ, draws, kk) >= (
        hypergeometric_tail(pop, succ, draws, kk) - 1e-9
    )
