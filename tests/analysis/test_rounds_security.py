"""Tests for round-complexity models and error budgets."""


from repro.analysis import (
    anonchan_rounds,
    comparison_table,
    empirical_distribution,
    error_budget,
    pw96_rounds,
    required_checks_for,
    statistical_distance,
    vabh03_rounds,
    zhang11_rounds,
)
from repro.core import scaled_parameters
from repro.vss import GGOR13_COST, RB89_COST


class TestRoundModels:
    def test_anonchan_with_rb89(self):
        """§1.1: round complexity essentially r_VSS-share (7 for RB89)."""
        est = anonchan_rounds(RB89_COST)
        assert est.rounds == 7 + 5

    def test_anonchan_with_ggor13_broadcasts(self):
        """Abstract/E2: two broadcast rounds total with GGOR13."""
        est = anonchan_rounds(GGOR13_COST)
        assert est.broadcast_rounds == 2

    def test_zhang11_dominated_by_bit_decomposition(self):
        """§1.2: 114-round bit decomposition vs 7-round VSS sharing."""
        z = zhang11_rounds(RB89_COST)
        a = anonchan_rounds(RB89_COST)
        assert z.rounds >= 7 + 114 + 114
        assert z.rounds > 10 * a.rounds

    def test_pw96_quadratic_growth(self):
        """Footnote 1: the adversary forces Omega(n^2) rounds."""
        small = pw96_rounds(8).rounds
        big = pw96_rounds(16).rounds
        assert big >= 3.5 * small  # ~quadratic: x4 when n doubles

    def test_pw96_beats_nobody_at_scale(self):
        for n in (9, 15, 25):
            assert pw96_rounds(n).rounds > anonchan_rounds().rounds

    def test_vabh03_repetition(self):
        one = vabh03_rounds(0.5)
        strong = vabh03_rounds(1 - 2**-10)
        assert one.rounds == 3
        assert strong.rounds == 30  # 10 repetitions

    def test_comparison_table_ordering(self):
        """E1's headline: ours fastest among the compared protocols."""
        table = comparison_table(n=10)
        ours = table[0]
        assert ours.protocol.startswith("GGOR14")
        for other in table[1:3]:  # Zhang11 and PW96
            assert ours.rounds < other.rounds


class TestErrorBudget:
    def test_terms_shrink_with_parameters(self):
        weak = error_budget(scaled_parameters(n=4, num_checks=3))
        strong = error_budget(scaled_parameters(n=4, num_checks=12))
        assert strong.cheater_survival < weak.cheater_survival

    def test_reliability_superset_of_terms(self):
        b = error_budget(scaled_parameters(n=5))
        assert b.reliability >= b.cheater_survival
        assert b.reliability >= b.collision_overflow

    def test_anonymity_only_vss(self):
        b = error_budget(scaled_parameters(n=5), vss_failure=0.25)
        assert b.anonymity == 0.25
        assert error_budget(scaled_parameters(n=5)).anonymity == 0.0

    def test_required_checks(self):
        assert required_checks_for(40, t=1) == 40
        assert required_checks_for(40, t=8) == 43


class TestStatistics:
    def test_statistical_distance_basics(self):
        assert statistical_distance({"a": 1.0}, {"a": 1.0}) == 0.0
        assert statistical_distance({"a": 1.0}, {"b": 1.0}) == 1.0
        assert statistical_distance({"a": 0.5, "b": 0.5}, {"a": 1.0}) == 0.5

    def test_empirical_distribution(self):
        d = empirical_distribution(["x", "x", "y", "z"])
        assert d == {"x": 0.5, "y": 0.25, "z": 0.25}
        assert empirical_distribution([]) == {}
