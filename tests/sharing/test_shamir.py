"""Tests for Shamir secret sharing."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import PrimeField, gf2k
from repro.sharing import ShamirScheme, Share


@pytest.fixture
def scheme():
    return ShamirScheme(gf2k(16), n=7, t=3)


class TestConstruction:
    def test_bad_threshold(self):
        f = gf2k(8)
        with pytest.raises(ValueError):
            ShamirScheme(f, n=5, t=5)
        with pytest.raises(ValueError):
            ShamirScheme(f, n=5, t=-1)

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            ShamirScheme(gf2k(2), n=5, t=1)

    def test_no_parties(self):
        with pytest.raises(ValueError):
            ShamirScheme(gf2k(8), n=0, t=0)

    def test_points_are_distinct_nonzero(self, scheme):
        values = [p.value for p in scheme.points]
        assert len(set(values)) == scheme.n
        assert 0 not in values


class TestShareReconstruct:
    def test_roundtrip(self, scheme):
        rng = random.Random(0)
        secret = scheme.field(12345)
        shares = scheme.share(secret, rng)
        assert scheme.reconstruct(shares) == secret
        assert scheme.reconstruct_all(shares) == secret

    def test_any_t_plus_1_subset(self, scheme):
        rng = random.Random(1)
        secret = scheme.field(777)
        shares = scheme.share(secret, rng)
        for subset in list(combinations(shares, scheme.t + 1))[:15]:
            assert scheme.reconstruct(list(subset)) == secret

    def test_too_few_shares(self, scheme):
        rng = random.Random(2)
        shares = scheme.share(scheme.field(1), rng)
        with pytest.raises(ValueError):
            scheme.reconstruct(shares[: scheme.t])

    def test_reconstruct_all_requires_n(self, scheme):
        rng = random.Random(3)
        shares = scheme.share(scheme.field(1), rng)
        with pytest.raises(ValueError):
            scheme.reconstruct_all(shares[:-1])

    def test_share_with_polynomial(self, scheme):
        rng = random.Random(4)
        secret = scheme.field(42)
        shares, poly = scheme.share_with_polynomial(secret, rng)
        assert poly(0) == secret
        for share in shares:
            assert poly(share.x) == share.y

    def test_share_vector(self, scheme):
        rng = random.Random(5)
        secrets = [scheme.field(v) for v in (1, 2, 3)]
        rows = scheme.share_vector(secrets, rng)
        for secret, row in zip(secrets, rows):
            assert scheme.reconstruct_all(row) == secret


class TestShareOrderAndDuplicates:
    """Regressions: shares arriving out of order or duplicated."""

    def test_reconstruct_all_reordered_shares(self):
        """Regression: a permuted share list must not change the secret.

        Previously ``reconstruct_all`` zipped shares against the cached
        coefficients positionally, so reversing the 5 shares of 42 over
        GF(97) silently reconstructed 55.
        """
        f = PrimeField(97)
        scheme = ShamirScheme(f, n=5, t=2)
        shares = scheme.share(f(42), random.Random(0))
        assert scheme.reconstruct_all(list(reversed(shares))) == f(42)

    def test_reconstruct_all_any_permutation(self, scheme):
        rng = random.Random(20)
        secret = scheme.field(31337)
        shares = scheme.share(secret, rng)
        for _ in range(10):
            rng.shuffle(shares)
            assert scheme.reconstruct_all(shares) == secret

    def test_reconstruct_all_unexpected_point(self, scheme):
        rng = random.Random(21)
        shares = scheme.share(scheme.field(1), rng)
        f = scheme.field
        bad = Share(f(scheme.n + 1), shares[0].y)
        with pytest.raises(ValueError, match="unexpected"):
            scheme.reconstruct_all(shares[:-1] + [bad])

    def test_reconstruct_all_duplicate_point(self, scheme):
        rng = random.Random(22)
        shares = scheme.share(scheme.field(1), rng)
        with pytest.raises(ValueError, match="duplicate"):
            scheme.reconstruct_all(shares[:-1] + [shares[0]])

    def test_reconstruct_benign_duplicates_collapse(self, scheme):
        rng = random.Random(23)
        secret = scheme.field(909)
        shares = scheme.share(secret, rng)
        doubled = shares[: scheme.t + 1] + shares[: scheme.t + 1]
        assert scheme.reconstruct(doubled) == secret

    def test_reconstruct_conflicting_duplicate_raises(self, scheme):
        rng = random.Random(24)
        shares = scheme.share(scheme.field(5), rng)
        forged = Share(shares[0].x, shares[0].y + scheme.field(1))
        with pytest.raises(ValueError, match="conflicting"):
            scheme.reconstruct(shares + [forged])

    def test_reconstruct_duplicates_do_not_count_toward_quorum(self, scheme):
        rng = random.Random(25)
        shares = scheme.share(scheme.field(5), rng)
        # t+1 copies of one share are still a single distinct point.
        with pytest.raises(ValueError, match="distinct"):
            scheme.reconstruct([shares[0]] * (scheme.t + 1))

    def test_consistent_conflicting_duplicate_raises(self, scheme):
        rng = random.Random(26)
        shares = scheme.share(scheme.field(5), rng)
        forged = Share(shares[0].x, shares[0].y + scheme.field(1))
        with pytest.raises(ValueError, match="conflicting"):
            scheme.consistent(shares + [forged])

    def test_consistent_benign_duplicates(self, scheme):
        rng = random.Random(27)
        shares = scheme.share(scheme.field(5), rng)
        assert scheme.consistent(shares + shares)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShamirScheme(gf2k(16), n=5, t=2, backend="numpy")

    def test_vectorized_requires_supported_field(self):
        # gf2k(33) exceeds the carryless kernel width: no substrate.
        with pytest.raises(ValueError):
            ShamirScheme(gf2k(33), n=5, t=2, backend="vectorized")

    def test_auto_falls_back_to_scalar(self):
        scheme = ShamirScheme(gf2k(33), n=5, t=2, backend="auto")
        rng = random.Random(28)
        secret = scheme.field(1 << 20)
        assert scheme.reconstruct_all(scheme.share(secret, rng)) == secret


class TestPrivacy:
    def test_t_shares_are_uniform(self):
        """Any t shares of distinct secrets have identical distributions.

        Statistical check: over many dealings of two different secrets,
        the first share's value distribution should cover the field
        roughly uniformly for both (chi-square-free sanity check on
        support coverage).
        """
        f = PrimeField(11)
        scheme = ShamirScheme(f, n=5, t=2)
        rng = random.Random(6)
        seen_a, seen_b = set(), set()
        for _ in range(400):
            seen_a.add(scheme.share(f(0), rng)[0].y.value)
            seen_b.add(scheme.share(f(7), rng)[0].y.value)
        assert seen_a == set(range(11))
        assert seen_b == set(range(11))


class TestConsistency:
    def test_consistent_true(self, scheme):
        rng = random.Random(7)
        shares = scheme.share(scheme.field(5), rng)
        assert scheme.consistent(shares)

    def test_consistent_false_on_tamper(self, scheme):
        rng = random.Random(8)
        shares = scheme.share(scheme.field(5), rng)
        bad = Share(shares[-1].x, shares[-1].y + scheme.field(1))
        assert not scheme.consistent(shares[:-1] + [bad])

    def test_trivially_consistent_when_few(self, scheme):
        rng = random.Random(9)
        shares = scheme.share(scheme.field(5), rng)
        assert scheme.consistent(shares[: scheme.t + 1])


class TestLinearity:
    def test_add_shares(self, scheme):
        rng = random.Random(10)
        f = scheme.field
        sa, sb = f(100), f(200)
        a = scheme.share(sa, rng)
        b = scheme.share(sb, rng)
        assert scheme.reconstruct_all(ShamirScheme.add_shares(a, b)) == sa + sb

    def test_add_mismatched_points(self, scheme):
        f = scheme.field
        with pytest.raises(ValueError):
            _ = Share(f(1), f(0)) + Share(f(2), f(0))

    def test_scale_shares(self, scheme):
        rng = random.Random(11)
        f = scheme.field
        secret = f(123)
        shares = scheme.share(secret, rng)
        scaled = ShamirScheme.scale_shares(shares, f(7))
        assert scheme.reconstruct_all(scaled) == secret * f(7)

    def test_linear_combination(self, scheme):
        rng = random.Random(12)
        f = scheme.field
        secrets = [f(3), f(5), f(9)]
        coeffs = [f(2), f(11), f(1)]
        rows = [scheme.share(s, rng) for s in secrets]
        combined = scheme.linear_combination(rows, coeffs)
        expected = f.sum([c * s for c, s in zip(coeffs, secrets)])
        assert scheme.reconstruct_all(combined) == expected

    def test_linear_combination_length_mismatch(self, scheme):
        rng = random.Random(13)
        rows = [scheme.share(scheme.field(1), rng)]
        with pytest.raises(ValueError):
            scheme.linear_combination(rows, [])


@settings(max_examples=50)
@given(
    secret=st.integers(min_value=0, max_value=2**16 - 1),
    seed=st.integers(min_value=0, max_value=10**9),
    n=st.integers(min_value=3, max_value=9),
)
def test_roundtrip_property(secret, seed, n):
    f = gf2k(16)
    t = (n - 1) // 2
    scheme = ShamirScheme(f, n=n, t=t)
    shares = scheme.share(f(secret), random.Random(seed))
    assert scheme.reconstruct_all(shares) == f(secret)


@settings(max_examples=50)
@given(
    a=st.integers(min_value=0, max_value=2**16 - 1),
    b=st.integers(min_value=0, max_value=2**16 - 1),
    seed=st.integers(min_value=0, max_value=10**9),
)
def test_linearity_property(a, b, seed):
    f = gf2k(16)
    scheme = ShamirScheme(f, n=5, t=2)
    rng = random.Random(seed)
    sa = scheme.share(f(a), rng)
    sb = scheme.share(f(b), rng)
    assert scheme.reconstruct_all(ShamirScheme.add_shares(sa, sb)) == f(a) + f(b)
