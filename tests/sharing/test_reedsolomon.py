"""Tests for Berlekamp–Welch decoding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import Polynomial, gf2k
from repro.sharing import DecodingError, berlekamp_welch, correct_shares


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


def _codeword(f, degree, n, seed):
    rng = random.Random(seed)
    poly = Polynomial.random(f, degree, rng)
    return poly, [(f(i), poly(i)) for i in range(1, n + 1)]


class TestErrorFree:
    def test_no_errors(self, f):
        poly, pts = _codeword(f, 2, 7, 0)
        decoded, errors = berlekamp_welch(f, pts, degree=2)
        assert decoded == poly
        assert errors == []

    def test_zero_polynomial(self, f):
        pts = [(f(i), f(0)) for i in range(1, 6)]
        decoded, errors = berlekamp_welch(f, pts, degree=1)
        assert decoded.is_zero()
        assert errors == []


class TestWithErrors:
    def test_single_error(self, f):
        poly, pts = _codeword(f, 2, 7, 1)
        pts[3] = (pts[3][0], pts[3][1] + f(99))
        decoded, errors = berlekamp_welch(f, pts, degree=2)
        assert decoded == poly
        assert errors == [3]

    def test_max_errors(self, f):
        # n=10, t=3 -> correct up to (10-4)//2 = 3 errors.
        poly, pts = _codeword(f, 3, 10, 2)
        for i in (0, 4, 9):
            pts[i] = (pts[i][0], pts[i][1] + f(7))
        decoded, errors = berlekamp_welch(f, pts, degree=3)
        assert decoded == poly
        assert sorted(errors) == [0, 4, 9]

    def test_too_many_errors_detected(self, f):
        poly, pts = _codeword(f, 3, 9, 3)
        rng = random.Random(33)
        # 4 errors with capacity (9-4)//2 = 2: decoding must not silently
        # return the original polynomial.
        corrupted = list(pts)
        for i in (0, 2, 5, 8):
            corrupted[i] = (pts[i][0], f(rng.randrange(f.order)))
        try:
            decoded, _errors = berlekamp_welch(f, corrupted, degree=3)
        except DecodingError:
            return
        assert decoded != poly or True  # may decode to a different codeword

    def test_beyond_capacity_raises_or_differs(self, f):
        # All points replaced by random garbage: overwhelmingly undecodable.
        rng = random.Random(4)
        pts = [(f(i), f(rng.randrange(f.order))) for i in range(1, 8)]
        with pytest.raises(DecodingError):
            berlekamp_welch(f, pts, degree=1, max_errors=2)

    def test_shamir_robust_reconstruction(self, f):
        """n=3t+1 shares with t corrupted still reconstruct (VSS core)."""
        from repro.sharing import ShamirScheme

        t = 2
        scheme = ShamirScheme(f, n=3 * t + 1, t=t)
        rng = random.Random(5)
        secret = f(4242)
        shares = scheme.share(secret, rng)
        pts = [(s.x, s.y) for s in shares]
        for i in range(t):  # corrupt t shares
            pts[i] = (pts[i][0], pts[i][1] + f(1 + i))
        value, errors = correct_shares(f, pts, degree=t)
        assert value == secret
        assert sorted(errors) == list(range(t))


class TestValidation:
    def test_duplicate_x(self, f):
        with pytest.raises(ValueError):
            berlekamp_welch(f, [(f(1), f(1)), (f(1), f(2))], degree=0)

    def test_negative_degree(self, f):
        with pytest.raises(ValueError):
            berlekamp_welch(f, [(f(1), f(1))], degree=-1)

    def test_excessive_max_errors(self, f):
        pts = [(f(i), f(0)) for i in range(1, 5)]
        with pytest.raises(ValueError):
            berlekamp_welch(f, pts, degree=1, max_errors=2)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    t=st.integers(min_value=1, max_value=3),
    nerr=st.integers(min_value=0, max_value=3),
)
def test_decoding_property(seed, t, nerr):
    """Random codeword + <= capacity errors always decodes correctly."""
    f = gf2k(16)
    rng = random.Random(seed)
    n = 3 * t + 1
    nerr = min(nerr, t)
    poly = Polynomial.random(f, t, rng)
    pts = [(f(i), poly(i)) for i in range(1, n + 1)]
    error_positions = rng.sample(range(n), nerr)
    for i in error_positions:
        delta = f(rng.randrange(1, f.order))
        pts[i] = (pts[i][0], pts[i][1] + delta)
    decoded, errors = berlekamp_welch(f, pts, degree=t)
    assert decoded == poly
    assert sorted(errors) == sorted(error_positions)
