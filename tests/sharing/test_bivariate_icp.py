"""Tests for bivariate sharing and the information checking protocol."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import gf2k
from repro.sharing import (
    SymmetricBivariate,
    forgery_probability,
    icp_combine,
    icp_generate,
    icp_verify,
    interpolate_bivariate_from_rows,
    rows_consistent,
)


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


class TestBivariate:
    def test_secret_at_origin(self, f):
        rng = random.Random(0)
        biv = SymmetricBivariate.random(f, t=3, secret=f(99), rng=rng)
        assert biv.secret() == f(99)
        assert biv(0, 0) == f(99)

    def test_symmetry(self, f):
        rng = random.Random(1)
        biv = SymmetricBivariate.random(f, t=3, secret=f(5), rng=rng)
        for x in range(1, 6):
            for y in range(1, 6):
                assert biv(x, y) == biv(y, x)

    def test_row_evaluation_matches(self, f):
        rng = random.Random(2)
        biv = SymmetricBivariate.random(f, t=2, secret=f(7), rng=rng)
        row3 = biv.row(3)
        for y in range(6):
            assert row3(y) == biv(3, y)

    def test_rows_give_shamir_shares(self, f):
        """f_i(0) lie on the degree-t polynomial F(x, 0) with secret at 0."""
        from repro.fields import interpolate_at

        rng = random.Random(3)
        t = 2
        biv = SymmetricBivariate.random(f, t=t, secret=f(1234), rng=rng)
        pts = [(f(i), biv.row(i)(0)) for i in range(1, t + 2)]
        assert interpolate_at(f, pts, 0) == f(1234)

    def test_pairwise_consistency_check(self, f):
        rng = random.Random(4)
        biv = SymmetricBivariate.random(f, t=2, secret=f(0), rng=rng)
        points = {i: f(i) for i in range(1, 6)}
        rows = {i: biv.row(i) for i in range(1, 6)}
        assert rows_consistent(rows, points)
        # Tamper one row.
        from repro.fields import Polynomial

        rows[3] = rows[3] + Polynomial(f, [1])
        assert not rows_consistent(rows, points)

    def test_interpolate_from_rows(self, f):
        rng = random.Random(5)
        t = 2
        biv = SymmetricBivariate.random(f, t=t, secret=f(55), rng=rng)
        points = {i: f(i) for i in range(1, t + 2)}
        rows = {i: biv.row(i) for i in range(1, t + 2)}
        recovered = interpolate_bivariate_from_rows(f, t, rows, points)
        assert recovered.secret() == f(55)
        assert recovered.coeffs == biv.coeffs

    def test_interpolate_needs_enough_rows(self, f):
        rng = random.Random(6)
        biv = SymmetricBivariate.random(f, t=3, secret=f(1), rng=rng)
        points = {1: f(1)}
        with pytest.raises(ValueError):
            interpolate_bivariate_from_rows(f, 3, {1: biv.row(1)}, points)

    def test_asymmetric_matrix_rejected(self, f):
        with pytest.raises(ValueError):
            SymmetricBivariate(f, [[0, 1], [2, 0]])

    def test_ragged_matrix_rejected(self, f):
        with pytest.raises(ValueError):
            SymmetricBivariate(f, [[0, 1], [1]])


class TestICP:
    def test_honest_opening_verifies(self, f):
        rng = random.Random(0)
        tag, key = icp_generate(f(1234), rng)
        assert icp_verify(tag, key)

    def test_modified_value_rejected(self, f):
        rng = random.Random(1)
        tag, key = icp_generate(f(1234), rng)
        from repro.sharing import ICPTag

        forged = ICPTag(tag.value + f(1), tag.aux)
        assert not icp_verify(forged, key)

    def test_forgery_probability_empirical(self, f):
        """Blind forgery succeeds with probability ~1/|F|."""
        rng = random.Random(2)
        successes = 0
        trials = 3000
        for _ in range(trials):
            tag, key = icp_generate(f(77), rng)
            from repro.sharing import ICPTag

            forged = ICPTag(
                f(rng.randrange(f.order)), f(rng.randrange(f.order))
            )
            if forged.value != tag.value and icp_verify(forged, key):
                successes += 1
        # 1/65536 per trial -> expect ~0.05 successes; allow up to 3.
        assert successes <= 3

    def test_zero_b_rejected(self, f):
        with pytest.raises(ValueError):
            icp_generate(f(1), random.Random(0), b=f(0))

    def test_linearity_same_b(self, f):
        rng = random.Random(3)
        b = f.random_nonzero(rng)
        tag1, key1 = icp_generate(f(10), rng, b=b)
        tag2, key2 = icp_generate(f(20), rng, b=b)
        tag, key = icp_combine([tag1, tag2], [key1, key2])
        assert tag.value == f(10) + f(20)
        assert icp_verify(tag, key)

    def test_linear_combination_with_coefficients(self, f):
        rng = random.Random(4)
        b = f.random_nonzero(rng)
        values = [f(3), f(7), f(11)]
        pairs = [icp_generate(v, rng, b=b) for v in values]
        coeffs = [f(2), f(5), f(1)]
        tag, key = icp_combine(
            [p[0] for p in pairs], [p[1] for p in pairs], coeffs
        )
        expected = f.sum([c * v for c, v in zip(coeffs, values)])
        assert tag.value == expected
        assert icp_verify(tag, key)

    def test_combine_different_b_raises(self, f):
        rng = random.Random(5)
        tag1, key1 = icp_generate(f(1), rng)
        tag2, key2 = icp_generate(f(2), rng)
        with pytest.raises(ValueError):
            icp_combine([tag1, tag2], [key1, key2])

    def test_combine_empty_raises(self, f):
        with pytest.raises(ValueError):
            icp_combine([], [])

    def test_forgery_probability_bound(self, f):
        assert forgery_probability(f) == 1 / f.order
        assert forgery_probability(f, attempts=f.order * 2) == 1.0


@settings(max_examples=60)
@given(
    value=st.integers(min_value=0, max_value=2**16 - 1),
    forged=st.integers(min_value=0, max_value=2**16 - 1),
    seed=st.integers(min_value=0, max_value=10**9),
)
def test_icp_soundness_property(value, forged, seed):
    """A forged value with the honest aux almost never verifies."""
    f = gf2k(16)
    rng = random.Random(seed)
    tag, key = icp_generate(f(value), rng)
    assert icp_verify(tag, key)
    if forged != value:
        from repro.sharing import ICPTag

        assert not icp_verify(ICPTag(f(forged), tag.aux), key)
