"""Batched dealing/reconstruction vs the scalar reference path.

The scalar path (``share`` / ``reconstruct`` / ``reconstruct_all``) is
ground truth; every batched entry point must agree with it *exactly* —
including the dealing rng stream, so a fixed seed yields bit-identical
shares on both paths.  Exercised across both vectorized substrates
(table-backed GF(2^k) and a word-sized prime field) and the edge shapes
(batch of 1, t = 0, n = 1).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import PrimeField, gf2k
from repro.sharing import ShamirScheme


def fields():
    return [gf2k(16), PrimeField(65521)]


def field_id(field):
    return field.short_name


@pytest.fixture(params=fields(), ids=field_id)
def field(request):
    return request.param


def make_secrets(field, count, seed=0):
    rng = random.Random(seed)
    return [field(rng.randrange(field.order)) for _ in range(count)]


class TestDealingEquivalence:
    """Batched dealing consumes the rng exactly like the scalar path."""

    @pytest.mark.parametrize("count", [1, 2, 33, 100])
    def test_share_vector_batched_matches_scalar_share(self, field, count):
        scalar = ShamirScheme(field, n=7, t=3, backend="scalar")
        batched = ShamirScheme(field, n=7, t=3, backend="vectorized")
        secrets = make_secrets(field, count, seed=count)
        expected = [scalar.share(s, random.Random(99)) for s in secrets]
        # One rng stream across the whole batch, same draws per secret.
        rng = random.Random(99)
        expected_stream = [scalar.share(s, rng) for s in secrets]
        got = batched.share_vector_batched(secrets, random.Random(99))
        assert got == expected_stream
        assert got[0] == expected[0]  # first secret: identical either way

    def test_share_vector_routes_through_batched(self, field):
        auto = ShamirScheme(field, n=5, t=2, backend="auto")
        secrets = make_secrets(field, 40, seed=3)
        assert auto.share_vector(
            secrets, random.Random(1)
        ) == auto.share_vector_batched(secrets, random.Random(1))

    def test_share_matrix_backends_agree(self, field):
        scalar = ShamirScheme(field, n=6, t=2, backend="scalar")
        batched = ShamirScheme(field, n=6, t=2, backend="vectorized")
        ints = [s.value for s in make_secrets(field, 64, seed=4)]
        assert scalar.share_matrix(
            ints, random.Random(2)
        ) == batched.share_matrix(ints, random.Random(2))

    def test_empty_batch(self, field):
        scheme = ShamirScheme(field, n=5, t=2, backend="vectorized")
        assert scheme.share_vector_batched([], random.Random(0)) == []
        assert scheme.reconstruct_batch([]) == []


class TestReconstructionEquivalence:
    def test_reconstruct_batch_roundtrip(self, field):
        scheme = ShamirScheme(field, n=7, t=3, backend="vectorized")
        secrets = make_secrets(field, 50, seed=5)
        rows = scheme.share_vector_batched(secrets, random.Random(5))
        assert scheme.reconstruct_batch(rows) == secrets
        # Per-row scalar reconstruction agrees exactly.
        for row, secret in zip(rows, secrets):
            assert scheme.reconstruct_all(row) == secret

    def test_reconstruct_batch_permuted_columns(self, field):
        scheme = ShamirScheme(field, n=7, t=3, backend="vectorized")
        secrets = make_secrets(field, 20, seed=6)
        rows = scheme.share_vector_batched(secrets, random.Random(6))
        perm = list(range(7))
        random.Random(7).shuffle(perm)
        permuted = [[row[i] for i in perm] for row in rows]
        assert scheme.reconstruct_batch(permuted) == secrets

    def test_reconstruct_batch_subset_of_points(self, field):
        scheme = ShamirScheme(field, n=7, t=3, backend="vectorized")
        secrets = make_secrets(field, 20, seed=7)
        rows = scheme.share_vector_batched(secrets, random.Random(7))
        subset = [row[2 : scheme.t + 3] for row in rows]  # t+1 shares
        assert scheme.reconstruct_batch(subset) == secrets

    def test_reconstruct_matrix_agrees_with_scalar(self, field):
        scalar = ShamirScheme(field, n=6, t=2, backend="scalar")
        batched = ShamirScheme(field, n=6, t=2, backend="vectorized")
        ints = [s.value for s in make_secrets(field, 64, seed=8)]
        table = scalar.share_matrix(ints, random.Random(8))
        xs = [p.value for p in scalar.points]
        assert (
            batched.reconstruct_matrix(table, xs)
            == scalar.reconstruct_matrix(table, xs)
            == ints
        )

    def test_reconstruct_batch_mismatched_rows(self, field):
        scheme = ShamirScheme(field, n=5, t=2, backend="vectorized")
        rows = scheme.share_vector_batched(
            make_secrets(field, 2, seed=9), random.Random(9)
        )
        mixed = [rows[0], list(reversed(rows[1]))]
        with pytest.raises(ValueError, match="same evaluation"):
            scheme.reconstruct_batch(mixed)

    def test_reconstruct_matrix_duplicate_points(self, field):
        scheme = ShamirScheme(field, n=5, t=2, backend="vectorized")
        with pytest.raises(ValueError, match="duplicate"):
            scheme.reconstruct_matrix([[0, 0, 0]], [1, 1, 2])

    def test_reconstruct_matrix_too_few_points(self, field):
        scheme = ShamirScheme(field, n=5, t=2, backend="vectorized")
        with pytest.raises(ValueError, match="at least"):
            scheme.reconstruct_matrix([[0, 0]], [1, 2])


class TestEdgeShapes:
    def test_batch_of_one(self, field):
        scheme = ShamirScheme(field, n=5, t=2, backend="vectorized")
        secrets = make_secrets(field, 1, seed=10)
        rows = scheme.share_vector_batched(secrets, random.Random(10))
        assert scheme.reconstruct_batch(rows) == secrets

    def test_threshold_zero(self, field):
        # t = 0: the sharing polynomial is the constant secret.
        scheme = ShamirScheme(field, n=3, t=0, backend="vectorized")
        scalar = ShamirScheme(field, n=3, t=0, backend="scalar")
        secrets = make_secrets(field, 5, seed=11)
        rows = scheme.share_vector_batched(secrets, random.Random(11))
        assert rows == scalar.share_vector_batched(secrets, random.Random(11))
        for row, secret in zip(rows, secrets):
            assert all(share.y == secret for share in row)
        assert scheme.reconstruct_batch(rows) == secrets

    def test_single_party(self, field):
        scheme = ShamirScheme(field, n=1, t=0, backend="vectorized")
        secrets = make_secrets(field, 4, seed=12)
        rows = scheme.share_vector_batched(secrets, random.Random(12))
        assert scheme.reconstruct_batch(rows) == secrets


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    count=st.integers(min_value=1, max_value=40),
    n=st.integers(min_value=2, max_value=9),
    data=st.data(),
)
def test_batch_roundtrip_property_gf2k(seed, count, n, data):
    f = gf2k(16)
    t = data.draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    scalar = ShamirScheme(f, n=n, t=t, backend="scalar")
    batched = ShamirScheme(f, n=n, t=t, backend="vectorized")
    rng = random.Random(seed)
    secrets = [f(rng.randrange(f.order)) for _ in range(count)]
    rows = batched.share_vector_batched(secrets, random.Random(seed))
    assert rows == scalar.share_vector_batched(secrets, random.Random(seed))
    assert batched.reconstruct_batch(rows) == secrets
    for row, secret in zip(rows, secrets):
        assert scalar.reconstruct_all(row) == secret


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    count=st.integers(min_value=1, max_value=40),
)
def test_batch_roundtrip_property_prime(seed, count):
    f = PrimeField(10007)
    scalar = ShamirScheme(f, n=5, t=2, backend="scalar")
    batched = ShamirScheme(f, n=5, t=2, backend="vectorized")
    rng = random.Random(seed)
    secrets = [f(rng.randrange(f.order)) for _ in range(count)]
    rows = batched.share_vector_batched(secrets, random.Random(seed))
    assert rows == scalar.share_vector_batched(secrets, random.Random(seed))
    assert batched.reconstruct_batch(rows) == secrets
    for row, secret in zip(rows, secrets):
        assert scalar.reconstruct(row[2:]) == secret
