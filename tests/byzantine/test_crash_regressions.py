"""Crash-fault regressions for the agreement layer (ISSUE 5).

Sweeps ``crash_after(r)`` over *every* round index of phase-king and
Dolev–Strong: a party that goes silent mid-protocol is the classic
benign fault, and both algorithms must keep agreement at their
resilience bounds (``t < n/4`` for phase-king, ``t < n/2`` for
Dolev–Strong over ideal signatures — both within the ``t < n/3``
regime the satellite task names) no matter *when* the crash lands.
"""

import pytest

from repro.byzantine import (
    DEFAULT_VALUE,
    IdealSignatures,
    dolev_strong_program,
    phase_king_program,
    run_dolev_strong,
    run_phase_king,
)
from repro.network import crash_after, faulty_adversary

# phase-king at n=5, t=1: (t+1) phases x 2 rounds = 4 rounds.
PK_N, PK_T = 5, 1
PK_ROUNDS = (PK_T + 1) * 2

# Dolev–Strong at n=4, t=1: t + 1 = 2 rounds.
DS_N, DS_T = 4, 1
DS_ROUNDS = DS_T + 1


def _phase_king_with_crash(crashed: int, crash_round: int, values):
    adv = faulty_adversary(
        {crashed},
        {crashed: phase_king_program(
            crashed, PK_N, PK_T, values.get(crashed, 0)
        )},
        crash_after(crash_round),
    )
    return run_phase_king(PK_N, PK_T, values, adversary=adv)


class TestPhaseKingCrashSweep:
    @pytest.mark.parametrize("crash_round", range(PK_ROUNDS))
    def test_agreement_when_the_king_crashes(self, crash_round):
        """Party 0 is the first phase's king — the worst crash victim."""
        values = {pid: pid % 2 for pid in range(PK_N)}
        res = _phase_king_with_crash(0, crash_round, values)
        decisions = set(res.outputs.values())
        assert len(decisions) == 1, f"disagreement: {res.outputs}"
        assert decisions.pop() in (0, 1)

    @pytest.mark.parametrize("crash_round", range(PK_ROUNDS))
    def test_agreement_when_a_subject_crashes(self, crash_round):
        values = {pid: pid % 2 for pid in range(PK_N)}
        res = _phase_king_with_crash(PK_N - 1, crash_round, values)
        decisions = set(res.outputs.values())
        assert len(decisions) == 1, f"disagreement: {res.outputs}"

    @pytest.mark.parametrize("crash_round", range(PK_ROUNDS))
    @pytest.mark.parametrize("crashed", [0, PK_N - 1])
    def test_validity_with_unanimous_honest_input(self, crashed, crash_round):
        """When every honest party starts with 1, they decide 1 —
        a crashing minority cannot flip a unanimous input."""
        values = {pid: 1 for pid in range(PK_N)}
        res = _phase_king_with_crash(crashed, crash_round, values)
        assert all(v == 1 for v in res.outputs.values()), res.outputs


def _dolev_strong_with_crash(crashed: int, crash_round: int, sender=0,
                             value="msg"):
    signatures = IdealSignatures()
    adv = faulty_adversary(
        {crashed},
        {crashed: dolev_strong_program(
            crashed, DS_N, DS_T, sender,
            value if crashed == sender else None, signatures,
        )},
        crash_after(crash_round),
    )
    return run_dolev_strong(
        DS_N, DS_T, sender, value, signatures=signatures, adversary=adv
    )


class TestDolevStrongCrashSweep:
    @pytest.mark.parametrize("crash_round", range(DS_ROUNDS))
    def test_agreement_when_the_sender_crashes(self, crash_round):
        res = _dolev_strong_with_crash(0, crash_round, sender=0)
        decisions = set(res.outputs.values())
        assert len(decisions) == 1, f"disagreement: {res.outputs}"
        # A sender silent from round zero yields the default value.
        if crash_round == 0:
            assert decisions == {DEFAULT_VALUE}

    @pytest.mark.parametrize("crash_round", range(DS_ROUNDS))
    def test_validity_when_a_relay_crashes(self, crash_round):
        """A crashing non-sender cannot break validity: every honest
        party still outputs the honest sender's value."""
        res = _dolev_strong_with_crash(DS_N - 1, crash_round, sender=0)
        assert all(v == "msg" for v in res.outputs.values()), res.outputs
