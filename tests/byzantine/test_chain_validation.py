"""Adversarial chain-validation tests for Dolev–Strong."""


from repro.byzantine import (
    DEFAULT_VALUE,
    IdealSignatures,
    run_dolev_strong,
)
from repro.network import Adversary, RoundOutput


def _honest_decisions(result, honest):
    return {result.outputs[p] for p in honest}


class TestChainForgeryAttempts:
    def test_duplicate_signer_chain_rejected(self):
        """A chain padding its length with a repeated signer is invalid."""
        sigs = IdealSignatures()

        class Duplicator(Adversary):
            def act(self, view):
                if view.round_index == 0:
                    return {3: RoundOutput()}
                # Round 2 requires chains of length >= 2; pad with a
                # duplicate of the sender's signature.
                val = "good"
                s0 = sigs.sign(0, val)  # replay: sender did sign "good"
                chain = [(0, s0), (0, s0)]
                return {
                    3: RoundOutput(
                        private={j: [("evil-dup", chain)] for j in range(3)}
                    )
                }

        res = run_dolev_strong(
            n=4, t=1, sender=0, value="good",
            signatures=sigs, adversary=Duplicator({3}),
        )
        assert _honest_decisions(res, range(3)) == {"good"}

    def test_chain_not_starting_at_sender_rejected(self):
        sigs = IdealSignatures()

        class WrongRoot(Adversary):
            def act(self, view):
                val = "forged"
                s3 = sigs.sign(3, val)  # corrupt party signs its own value
                return {
                    3: RoundOutput(
                        private={j: [(val, [(3, s3)])] for j in range(3)}
                    )
                }

        res = run_dolev_strong(
            n=4, t=1, sender=0, value="good",
            signatures=sigs, adversary=WrongRoot({3}),
        )
        assert _honest_decisions(res, range(3)) == {"good"}

    def test_short_chain_in_late_round_rejected(self):
        """Round r requires r signatures: replaying a length-1 chain in
        round 2 must not extract (the classic rushing-injection guard)."""
        sigs = IdealSignatures()
        captured = {}

        class LateReplayer(Adversary):
            def act(self, view):
                if view.round_index == 0:
                    # Capture the sender's round-1 message to us.
                    captured.update(view.to_corrupted.get(3, {}))
                    return {3: RoundOutput()}
                # Replay the captured length-1 chain too late, with a
                # *different* (honestly signed, so verifiable) value to
                # try to split decisions -- but no second sender
                # signature exists, so honest parties must ignore it.
                payload = captured.get(0)
                if payload:
                    return {
                        3: RoundOutput(
                            private={j: payload for j in range(3)}
                        )
                    }
                return {3: RoundOutput()}

        res = run_dolev_strong(
            n=4, t=1, sender=0, value="v",
            signatures=sigs, adversary=LateReplayer({3}),
        )
        # The replayed chain carries the same value "v", already
        # extracted in round 1; agreement and validity hold.
        assert _honest_decisions(res, range(3)) == {"v"}

    def test_malformed_items_ignored(self):
        class GarbageSpammer(Adversary):
            def act(self, view):
                junk = [
                    "not-a-tuple",
                    ("val",),
                    ("val", "not-a-list"),
                    ("val", [("no-sig",)]),
                    (None, [(0, None)]),
                ]
                return {
                    3: RoundOutput(private={j: junk for j in range(3)})
                }

        res = run_dolev_strong(
            n=4, t=1, sender=0, value=5, adversary=GarbageSpammer({3})
        )
        assert _honest_decisions(res, range(3)) == {5}

    def test_two_corrupt_equivocating_sender_and_helper(self):
        """Sender + helper equivocate with full signature chains: honest
        parties extract both values and agree on the default."""
        sigs = IdealSignatures()

        class Team(Adversary):
            def act(self, view):
                r = view.round_index
                out = {0: RoundOutput(), 4: RoundOutput()}
                if r == 0:
                    # Sender signs both values; sends "a" to 1, "b" to 2.
                    sa = sigs.sign(0, "a")
                    sb = sigs.sign(0, "b")
                    out[0] = RoundOutput(
                        private={
                            1: [("a", [(0, sa)])],
                            2: [("b", [(0, sb)])],
                        }
                    )
                return out

        res = run_dolev_strong(
            n=5, t=2, sender=0, value=None,
            signatures=sigs, adversary=Team({0, 4}),
        )
        decisions = _honest_decisions(res, (1, 2, 3))
        assert len(decisions) == 1
        assert decisions == {DEFAULT_VALUE}


class TestPseudosigByteMessages:
    def test_end_to_end_bytes_setup_over_real_channel(self):
        """§4 full pipeline with byte messages: keys through real
        AnonChan executions, then arbitrary-domain signing."""
        from repro.core import scaled_parameters
        from repro.pseudosig import PseudosignatureScheme, setup_with_anonchan
        from repro.vss import IdealVSS
        from repro.fields import gf2k

        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=32)
        vss = IdealVSS(params.field, params.n, params.t)
        scheme = PseudosignatureScheme(
            n=4, signer=0, blocks=3, max_transfers=2, mac_field=gf2k(16)
        )
        setup, views, _metrics = setup_with_anonchan(scheme, params, vss, seed=9)
        message = b"broadcast this exact bytestring"
        sig = scheme.sign_bytes(setup, message)
        for view in views.values():
            assert scheme.verify_bytes(view, sig, level=1)
