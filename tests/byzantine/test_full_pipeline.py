"""The complete §4 pipeline with zero ideal shortcuts.

Setup: every party's pseudosignature keys travel through *real*
AnonChan executions (tagged darts, parallel VSS, cut-and-choose,
private reconstruction).  Main phase: Dolev–Strong broadcast on
point-to-point channels only, authenticated by those keys.
"""

import pytest

from repro.byzantine import PseudosignatureAdapter, run_dolev_strong
from repro.core import scaled_parameters
from repro.fields import gf2k
from repro.network import SilentAdversary
from repro.vss import IdealVSS


@pytest.fixture(scope="module")
def adapter():
    n, t = 4, 1
    params = scaled_parameters(n=n, t=t, d=6, num_checks=3, kappa=32)
    vss = IdealVSS(params.field, n, t)
    return PseudosignatureAdapter.from_real_setups(
        n=n,
        blocks=3,  # >= max_transfers + 1
        max_transfers=2,
        params=params,
        vss=vss,
        mac_field=gf2k(16),
        seed=13,
    )


@pytest.mark.slow
class TestFullPipeline:
    def test_broadcast_over_channel_built_keys(self, adapter):
        res = run_dolev_strong(4, 1, sender=0, value="block#7",
                               signatures=adapter)
        assert all(v == "block#7" for v in res.outputs.values())
        assert res.metrics.broadcast_rounds == 0

    def test_broadcast_with_crash_fault(self, adapter):
        res = run_dolev_strong(4, 1, sender=1, value=99,
                               signatures=adapter,
                               adversary=SilentAdversary({3}))
        for pid in range(3):
            assert res.outputs[pid] == 99

    def test_every_party_can_be_sender(self, adapter):
        for sender in range(4):
            res = run_dolev_strong(4, 1, sender=sender, value=("v", sender),
                                   signatures=adapter)
            assert all(v == ("v", sender) for v in res.outputs.values())
