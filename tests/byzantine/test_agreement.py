"""Tests for Dolev–Strong, phase-king, and broadcast simulation."""

import random

import pytest

from repro.byzantine import (
    DEFAULT_VALUE,
    IdealSignatures,
    PseudosignatureAdapter,
    SimulatedBroadcastChannel,
    run_dolev_strong,
    run_phase_king,
)
from repro.network import Adversary, RoundOutput, SilentAdversary


class TestDolevStrongHonest:
    def test_agreement_and_validity(self):
        res = run_dolev_strong(n=5, t=2, sender=0, value="hello")
        assert all(v == "hello" for v in res.outputs.values())

    def test_round_count_t_plus_one(self):
        res = run_dolev_strong(n=5, t=2, sender=0, value=1)
        assert res.metrics.rounds == 3  # t + 1

    def test_no_physical_broadcast_used(self):
        """The whole point: broadcast simulated on point-to-point only."""
        res = run_dolev_strong(n=7, t=3, sender=2, value=9)
        assert res.metrics.broadcast_rounds == 0
        assert all(v == 9 for v in res.outputs.values())

    def test_non_sender_needs_no_input(self):
        res = run_dolev_strong(n=4, t=1, sender=3, value=5)
        assert all(v == 5 for v in res.outputs.values())


class TestDolevStrongAdversarial:
    def test_silent_sender_defaults(self):
        res = run_dolev_strong(
            n=5, t=2, sender=0, value=7, adversary=SilentAdversary({0})
        )
        assert all(v == DEFAULT_VALUE for v in res.outputs.values())

    def test_equivocating_sender_agreement_holds(self):
        """A corrupt sender sends different signed values to different
        parties; honest parties still agree (on the default)."""

        class Equivocator(Adversary):
            def __init__(self, signatures, n):
                super().__init__({0})
                self.signatures = signatures
                self.n = n

            def act(self, view):
                if view.round_index == 0:
                    half = self.n // 2
                    msgs = {}
                    for j in range(1, self.n):
                        value = "a" if j <= half else "b"
                        sig = self.signatures.sign(0, value)
                        msgs[j] = [(value, [(0, sig)])]
                    return {0: RoundOutput(private=msgs)}
                return {0: RoundOutput.silent()}

        sigs = IdealSignatures()
        res = run_dolev_strong(
            n=6, t=2, sender=0, value=None,
            signatures=sigs, adversary=Equivocator(sigs, 6),
        )
        outs = [res.outputs[p] for p in range(1, 6)]
        assert all(o == outs[0] for o in outs)
        assert outs[0] == DEFAULT_VALUE  # both values extracted

    def test_silent_relays_do_not_matter(self):
        res = run_dolev_strong(
            n=7, t=3, sender=0, value=42, adversary=SilentAdversary({4, 5, 6})
        )
        for pid in range(4):
            assert res.outputs[pid] == 42

    def test_unsigned_injection_rejected(self):
        """A corrupt relay injecting an unsigned value changes nothing."""

        class Injector(Adversary):
            def act(self, view):
                return {
                    3: RoundOutput(
                        private={
                            j: [("evil", [(0, ("sig", 0, "evil"))])]
                            for j in range(3)
                        }
                    )
                }

        res = run_dolev_strong(
            n=4, t=1, sender=0, value="good", adversary=Injector({3})
        )
        for pid in range(3):
            assert res.outputs[pid] == "good"


class TestDolevStrongOverPseudosignatures:
    def test_broadcast_with_pseudosignatures(self):
        rng = random.Random(0)
        n, t = 5, 2
        adapter = PseudosignatureAdapter(
            n=n, blocks=4 * (t + 2), max_transfers=t + 1, rng=rng
        )
        res = run_dolev_strong(n, t, sender=1, value="msg", signatures=adapter)
        assert all(v == "msg" for v in res.outputs.values())
        assert res.metrics.broadcast_rounds == 0

    def test_t_less_than_half(self):
        """Resilience t < n/2 — beyond any unauthenticated protocol."""
        rng = random.Random(1)
        n, t = 7, 3
        adapter = PseudosignatureAdapter(
            n=n, blocks=4 * (t + 2), max_transfers=t + 1, rng=rng
        )
        res = run_dolev_strong(
            n, t, sender=0, value=5, signatures=adapter,
            adversary=SilentAdversary({4, 5, 6}),
        )
        for pid in range(4):
            assert res.outputs[pid] == 5


class TestPhaseKing:
    def test_agreement_all_same_input(self):
        res = run_phase_king(n=9, t=2, values={i: 1 for i in range(9)})
        assert all(v == 1 for v in res.outputs.values())

    def test_validity_mixed_inputs(self):
        values = {i: i % 2 for i in range(9)}
        res = run_phase_king(n=9, t=2, values=values)
        outs = list(res.outputs.values())
        assert all(v == outs[0] for v in outs)
        assert outs[0] in (0, 1)

    def test_agreement_under_silent_faults(self):
        values = {i: i % 2 for i in range(9)}
        res = run_phase_king(
            n=9, t=2, values=values, adversary=SilentAdversary({7, 8})
        )
        outs = [res.outputs[i] for i in range(7)]
        assert all(v == outs[0] for v in outs)

    def test_resilience_bound_enforced(self):
        with pytest.raises(ValueError):
            run_phase_king(n=8, t=2, values={})

    def test_round_count(self):
        res = run_phase_king(n=9, t=2, values={i: 0 for i in range(9)})
        assert res.metrics.rounds == 2 * 3  # two rounds per phase, t+1 phases


class TestSimulatedBroadcast:
    def test_setup_then_many_broadcasts(self):
        chan = SimulatedBroadcastChannel(n=5, t=2)
        cost = chan.setup(random.Random(2))
        assert cost.broadcast_rounds == 2  # GGOR13: the paper's headline
        assert cost.rounds == 21 + 5
        for sender, value in ((0, "x"), (3, "y")):
            res = chan.broadcast(sender, value)
            assert all(v == value for v in res.outputs.values())
            assert res.metrics.broadcast_rounds == 0

    def test_setup_required(self):
        chan = SimulatedBroadcastChannel(n=5, t=2)
        with pytest.raises(RuntimeError):
            chan.broadcast(0, "x")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SimulatedBroadcastChannel(n=4, t=2)
