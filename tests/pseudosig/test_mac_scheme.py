"""Tests for IT-MACs and the PW96 pseudosignature scheme."""

import random

import pytest

from repro.fields import gf2k
from repro.pseudosig import (
    MACKey,
    PseudosignatureScheme,
    mac_sign,
    mac_verify,
    pack_key,
    unpack_key,
)


class TestMAC:
    def test_sign_verify(self):
        f = gf2k(16)
        rng = random.Random(0)
        key = MACKey.random(f, rng)
        m = f(1234)
        assert mac_verify(key, m, mac_sign(key, m))

    def test_wrong_message_rejected(self):
        f = gf2k(16)
        rng = random.Random(1)
        key = MACKey.random(f, rng)
        tag = mac_sign(key, f(10))
        assert not mac_verify(key, f(11), tag)

    def test_a_component_nonzero(self):
        f = gf2k(16)
        rng = random.Random(2)
        assert all(MACKey.random(f, rng).a.value != 0 for _ in range(100))

    def test_forgery_rate_empirical(self):
        """Blind substitution forgery succeeds ~1/|F|."""
        f = gf2k(8)  # small field so we can measure
        rng = random.Random(3)
        hits = 0
        trials = 4000
        for _ in range(trials):
            key = MACKey.random(f, rng)
            m, m2 = f(1), f(2)
            _tag = mac_sign(key, m)
            guess = f(rng.randrange(f.order))
            if mac_verify(key, m2, guess):
                hits += 1
        assert hits / trials < 4 / f.order + 0.01

    def test_pack_unpack_roundtrip(self):
        mac_field = gf2k(8)
        channel_field = gf2k(16)
        rng = random.Random(4)
        for _ in range(50):
            key = MACKey.random(mac_field, rng)
            packed = pack_key(key, channel_field)
            assert packed.value != 0
            assert unpack_key(packed, mac_field) == key

    def test_pack_too_small_channel(self):
        key = MACKey.random(gf2k(16), random.Random(5))
        with pytest.raises(ValueError):
            pack_key(key, gf2k(16))


@pytest.fixture
def scheme():
    return PseudosignatureScheme(n=5, signer=0, blocks=12, max_transfers=3)


class TestPseudosignatures:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            PseudosignatureScheme(n=5, signer=0, blocks=2, max_transfers=3)
        with pytest.raises(ValueError):
            PseudosignatureScheme(n=5, signer=9, blocks=12, max_transfers=3)

    def test_thresholds_decrease(self, scheme):
        ths = [scheme.threshold(v) for v in range(1, 4)]
        assert ths[0] == scheme.blocks  # first verifier wants everything
        assert ths == sorted(ths, reverse=True)
        assert ths[-1] > 0
        with pytest.raises(ValueError):
            scheme.threshold(0)
        with pytest.raises(ValueError):
            scheme.threshold(99)

    def test_honest_signature_accepted_at_all_levels(self, scheme):
        rng = random.Random(0)
        setup, views = scheme.ideal_setup(rng)
        msg = scheme.mac_field(777)
        sig = scheme.sign(setup, msg)
        for view in views.values():
            for level in range(1, scheme.max_transfers + 1):
                assert scheme.verify(view, sig, level)

    def test_signature_on_other_message_rejected(self, scheme):
        rng = random.Random(1)
        setup, views = scheme.ideal_setup(rng)
        sig = scheme.sign(setup, scheme.mac_field(777))
        forged = type(sig)(
            message=scheme.mac_field(778), minisigs=sig.minisigs
        )
        for view in views.values():
            assert not scheme.verify(view, forged, level=1)
            assert scheme.matching_blocks(view, forged) <= 1

    def test_setup_blocks_are_anonymous_multisets(self, scheme):
        """The signer's block contains everyone's key, origin hidden."""
        rng = random.Random(2)
        setup, views = scheme.ideal_setup(rng)
        for b, block in enumerate(setup.blocks):
            expected = sorted(
                (v.keys[b].a.value, v.keys[b].b.value) for v in views.values()
            )
            actual = sorted((k.a.value, k.b.value) for k in block)
            assert actual == expected

    def test_partial_signature_damages_random_verifiers(self, scheme):
        """Unsigned keys hit verifiers the signer cannot choose."""
        rng = random.Random(3)
        setup, views = scheme.ideal_setup(rng)
        msg = scheme.mac_field(55)
        sig = scheme.sign_partial(setup, msg, rng, skip_fraction=0.5)
        counts = [scheme.matching_blocks(v, sig) for v in views.values()]
        # Damage is spread: nobody keeps a perfect count...
        assert all(c < scheme.blocks for c in counts)
        # ...and nobody is wiped out either (it is random, not targeted).
        assert all(c > 0 for c in counts)

    def test_wrong_block_count_rejected(self, scheme):
        rng = random.Random(4)
        setup, views = scheme.ideal_setup(rng)
        from repro.pseudosig import Pseudosignature

        sig = Pseudosignature(message=scheme.mac_field(1), minisigs=())
        view = next(iter(views.values()))
        assert scheme.matching_blocks(view, sig) == 0
