"""Tests for transfer chains and the real AnonChan-based setup."""

import random

import pytest

from repro.pseudosig import (
    PseudosignatureScheme,
    break_probability,
    chain_broken,
    setup_with_anonchan,
    transfer_chain,
)


@pytest.fixture
def scheme():
    return PseudosignatureScheme(n=5, signer=0, blocks=16, max_transfers=4)


class TestTransferChains:
    def test_honest_chain_never_breaks(self, scheme):
        rng = random.Random(0)
        for trial in range(10):
            setup, views = scheme.ideal_setup(rng)
            sig = scheme.sign(setup, scheme.mac_field(trial))
            path = list(views)
            rng.shuffle(path)
            steps = transfer_chain(scheme, views, sig, path[: scheme.max_transfers])
            assert all(s.accepted for s in steps)
            assert not chain_broken(steps)

    def test_levels_increase_along_path(self, scheme):
        rng = random.Random(1)
        setup, views = scheme.ideal_setup(rng)
        sig = scheme.sign(setup, scheme.mac_field(9))
        path = list(views)[:3]
        steps = transfer_chain(scheme, views, sig, path)
        assert [s.level for s in steps] == [1, 2, 3]
        assert [s.threshold for s in steps] == [
            scheme.threshold(v) for v in (1, 2, 3)
        ]

    def test_path_too_long_rejected(self, scheme):
        rng = random.Random(2)
        setup, views = scheme.ideal_setup(rng)
        sig = scheme.sign(setup, scheme.mac_field(9))
        with pytest.raises(ValueError):
            transfer_chain(scheme, views, sig, list(views) * 3)

    def test_chain_stops_at_first_reject(self, scheme):
        rng = random.Random(3)
        setup, views = scheme.ideal_setup(rng)
        # Garbage signature: first verifier rejects, chain length 1.
        sig = scheme.sign_partial(
            setup, scheme.mac_field(9), rng, skip_fraction=1.0
        )
        path = list(views)
        steps = transfer_chain(scheme, views, sig, path[:4])
        assert len(steps) == 1
        assert not steps[0].accepted

    def test_break_probability_small(self, scheme):
        """The cheating signer rarely creates an accept->reject gap.

        With anonymity hiding key ownership, per-verifier damage
        concentrates; the decreasing thresholds absorb the spread.
        """
        rng = random.Random(4)
        rate = break_probability(scheme, trials=60, rng=rng, skip_fraction=0.5)
        assert rate <= 0.25

    def test_all_or_nothing_signers_never_break(self, scheme):
        rng = random.Random(5)
        assert break_probability(scheme, 20, rng, skip_fraction=0.0) == 0.0
        assert break_probability(scheme, 20, rng, skip_fraction=1.0) == 0.0


class TestAnonChanSetup:
    def test_real_channel_setup_produces_working_signatures(self):
        """End-to-end §4: keys travel through actual AnonChan runs."""
        from repro.core import scaled_parameters
        from repro.vss import IdealVSS

        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=32)
        vss = IdealVSS(params.field, params.n, params.t)
        scheme = PseudosignatureScheme(
            n=4, signer=0, blocks=3, max_transfers=2,
            mac_field=__import__("repro.fields", fromlist=["gf2k"]).gf2k(16),
        )
        setup, views, metrics = setup_with_anonchan(scheme, params, vss, seed=5)
        # Every block gathered one key from every other party.
        assert all(len(block) == 3 for block in setup.blocks)
        # The material actually signs and verifies.
        msg = scheme.mac_field(4242)
        sig = scheme.sign(setup, msg)
        for view in views.values():
            assert scheme.verify(view, sig, level=1)
        # Constant rounds per invocation: r_VSS-share + 5.
        assert all(m.rounds == vss.cost.share_rounds + 5 for m in metrics)

    def test_channel_field_too_small(self):
        from repro.core import scaled_parameters
        from repro.vss import IdealVSS

        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        scheme = PseudosignatureScheme(n=4, signer=0, blocks=3, max_transfers=2)
        with pytest.raises(ValueError):
            setup_with_anonchan(scheme, params, vss, seed=0)


class TestAnonymityAblation:
    """§4's rationale, measured: without the channel's anonymity the
    cheating signer breaks transferability deterministically."""

    def test_deanonymized_setup_is_breakable(self, scheme):
        import random as _random

        from repro.pseudosig import targeted_partial_signature

        rng = _random.Random(0)
        setup, views, ownership = scheme.deanonymized_setup(rng)
        others = sorted(views)
        first, victim = others[0], others[1]
        msg = scheme.mac_field(99)
        sig = targeted_partial_signature(
            scheme, setup, ownership, msg, victim=victim, victim_level=2
        )
        steps = transfer_chain(scheme, views, sig, [first, victim])
        # Deterministic accept-then-reject: the break.
        assert steps[0].accepted
        assert not steps[1].accepted
        assert chain_broken(steps)

    def test_anonymous_setup_resists_same_budget(self, scheme):
        """The same number of garbage minisignatures, but placed blindly
        (anonymous setup): over many trials the break never lands."""
        import random as _random

        rng = _random.Random(1)
        breaks = 0
        trials = 40
        for _ in range(trials):
            setup, views = scheme.ideal_setup(rng)
            msg = scheme.mac_field(7)
            # Blind version of the targeted attack: spoil one random key
            # per spoiled block (cannot know whose it is).
            spoil_blocks = scheme.blocks - scheme.threshold(2) + 1
            sig = scheme.sign(setup, msg)
            minisigs = [list(row) for row in sig.minisigs]
            for b in range(spoil_blocks):
                minisigs[b][rng.randrange(len(minisigs[b]))] = (
                    scheme.mac_field.random(rng)
                )
            from repro.pseudosig import Pseudosignature

            blinded = Pseudosignature(
                message=msg, minisigs=tuple(tuple(r) for r in minisigs)
            )
            others = sorted(views)
            steps = transfer_chain(
                scheme, views, blinded, others[: scheme.max_transfers]
            )
            if chain_broken(steps):
                breaks += 1
        # Spoiling one of n-1 keys per block hits any given verifier in
        # ~1/(n-1) of the spoiled blocks: far too few to cross the
        # threshold gap; breaks are rare to nonexistent.
        assert breaks <= 2
