"""Tests for domain-independent (byte-message) pseudosignatures.

§1.2/§4: the PW96 approach signs messages from domains unknown at setup
time; SHZI02-style schemes are confined to the underlying field.
"""

import random

import pytest

from repro.fields import gf2k
from repro.pseudosig import (
    MACKey,
    PseudosignatureScheme,
    mac_sign_message,
    mac_verify_message,
    message_forgery_probability,
    message_to_blocks,
)


class TestBlockMAC:
    def test_sign_verify_roundtrip(self):
        f = gf2k(16)
        rng = random.Random(0)
        key = MACKey.random(f, rng)
        for message in (b"", b"x", b"hello world", b"\x00" * 100, bytes(range(256))):
            tag = mac_sign_message(key, message)
            assert mac_verify_message(key, message, tag)

    def test_different_message_rejected(self):
        f = gf2k(16)
        key = MACKey.random(f, random.Random(1))
        tag = mac_sign_message(key, b"attack at dawn")
        assert not mac_verify_message(key, b"attack at dusk", tag)
        assert not mac_verify_message(key, b"attack at dawn!", tag)

    def test_length_extension_blocked(self):
        """Appending zero bytes changes the tag (the length terminator)."""
        f = gf2k(16)
        key = MACKey.random(f, random.Random(2))
        assert mac_sign_message(key, b"ab") != mac_sign_message(key, b"ab\x00")
        assert mac_sign_message(key, b"") != mac_sign_message(key, b"\x00")

    def test_blocks_encoding(self):
        f = gf2k(16)
        blocks = message_to_blocks(b"abcd", f)
        assert len(blocks) == 3  # two 2-byte blocks + length terminator
        assert blocks[0] == f(ord("a") << 8 | ord("b"))
        assert blocks[-1] == f(4)

    def test_odd_field_rejected(self):
        with pytest.raises(ValueError):
            message_to_blocks(b"x", gf2k(15))

    def test_forgery_bound_grows_with_length(self):
        f = gf2k(16)
        assert message_forgery_probability(f, 10) < message_forgery_probability(
            f, 10_000
        )

    def test_forgery_rate_empirical(self):
        """Random substitution forgeries almost never verify."""
        f = gf2k(16)
        rng = random.Random(3)
        hits = 0
        for _ in range(2000):
            key = MACKey.random(f, rng)
            _tag = mac_sign_message(key, b"original")
            guess = f(rng.randrange(f.order))
            if mac_verify_message(key, b"forged!!", guess):
                hits += 1
        assert hits <= 2


class TestBytesPseudosignatures:
    @pytest.fixture
    def scheme(self):
        return PseudosignatureScheme(n=5, signer=0, blocks=12, max_transfers=3)

    def test_sign_and_verify_arbitrary_message(self, scheme):
        rng = random.Random(0)
        setup, views = scheme.ideal_setup(rng)
        message = b"this domain was unknown at setup time \xf0\x9f\x94\x92"
        sig = scheme.sign_bytes(setup, message)
        for view in views.values():
            for level in range(1, scheme.max_transfers + 1):
                assert scheme.verify_bytes(view, sig, level)

    def test_tampered_message_rejected(self, scheme):
        rng = random.Random(1)
        setup, views = scheme.ideal_setup(rng)
        sig = scheme.sign_bytes(setup, b"pay 10 coins to bob")
        from repro.pseudosig import BytesPseudosignature

        forged = BytesPseudosignature(
            message=b"pay 99 coins to eve", minisigs=sig.minisigs
        )
        for view in views.values():
            assert not scheme.verify_bytes(view, forged, level=1)

    def test_same_setup_signs_many_domains(self, scheme):
        """The setup fixes no message space: field-sized, long, empty."""
        rng = random.Random(2)
        setup, views = scheme.ideal_setup(rng)
        view = next(iter(views.values()))
        for message in (b"", b"short", b"L" * 5000):
            sig = scheme.sign_bytes(setup, message)
            assert scheme.verify_bytes(view, sig, level=1)
