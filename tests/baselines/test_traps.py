"""Tests for the executable trap mechanism (PW96 mechanics)."""

import random

import pytest

from repro.baselines.traps import TrapDCNet, trap_catch_probability
from repro.fields import gf2k


@pytest.fixture
def net():
    return TrapDCNet(gf2k(16), n=5, num_slots=12, rng=random.Random(0))


class TestHonestRounds:
    def test_clean_round_delivers_and_traps_quiet(self, net):
        messages = {0: (3, 111), 1: (7, 222)}
        traps = {2: (5, 999), 3: (9, 888)}
        result = net.run_round(messages, traps)
        assert result.sprung_traps == []
        assert sorted(result.delivered) == [111, 222]
        assert result.slots[5] == 999  # trap value came back intact

    def test_pads_cancel(self, net):
        result = net.run_round({}, {})
        assert all(v == 0 for v in result.slots)


class TestDisruption:
    def test_jammer_springs_trap(self, net):
        traps = {2: (5, 999)}
        disruption = {4: {slot: 7 for slot in range(12)}}  # jam everything
        result = net.run_round({0: (3, 111)}, traps, disruption)
        assert result.sprung_traps == [5]
        assert len(result.localized) == 1

    def test_localization_implicates_corrupt(self, net):
        traps = {2: (5, 999)}
        disruption = {4: {5: 7}}
        result = net.run_round({}, traps, disruption)
        kind, who = result.localized[0]
        assert 4 in who  # the corrupt party is in the localized set
        if kind == "pair":
            assert len(who) == 2

    def test_selective_jam_of_message_slot_misses_traps(self, net):
        """A jammer hitting only a non-trap slot is not caught this
        round — the reason PW96 needs many rounds."""
        traps = {2: (5, 999)}
        disruption = {4: {3: 1}}  # hits the message slot only
        result = net.run_round({0: (3, 111)}, traps, disruption)
        assert result.sprung_traps == []
        assert 111 not in result.delivered  # the message was destroyed


class TestCatchProbability:
    def test_formula_extremes(self):
        assert trap_catch_probability(10, 0, 5) == pytest.approx(0.0)
        assert trap_catch_probability(10, 10, 1) == pytest.approx(1.0)
        assert trap_catch_probability(10, 5, 10) == pytest.approx(1.0)

    def test_single_hit(self):
        assert trap_catch_probability(10, 3, 1) == pytest.approx(0.3)

    def test_measured_matches_formula(self):
        """Monte-Carlo: random single-slot jams vs hidden traps."""
        f = gf2k(16)
        trials, caught = 300, 0
        num_slots, num_traps = 12, 4
        rng = random.Random(1)
        for trial in range(trials):
            net = TrapDCNet(f, n=4, num_slots=num_slots, rng=random.Random(trial))
            trap_slots = rng.sample(range(num_slots), num_traps)
            traps = {
                owner: (slot, 1000 + owner)
                for owner, slot in enumerate(trap_slots[:3])
            }
            jam_slot = rng.randrange(num_slots)
            result = net.run_round({}, traps, {3: {jam_slot: 5}})
            if result.sprung_traps:
                caught += 1
        predicted = trap_catch_probability(num_slots, 3, 1)
        assert caught / trials == pytest.approx(predicted, abs=0.08)

    def test_full_jam_always_caught(self):
        f = gf2k(16)
        for seed in range(20):
            net = TrapDCNet(f, n=4, num_slots=8, rng=random.Random(seed))
            traps = {1: (seed % 8, 42)}
            result = net.run_round(
                {}, traps, {3: {s: 9 for s in range(8)}}
            )
            assert result.sprung_traps
