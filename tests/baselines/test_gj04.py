"""Tests for the GJ04 baseline model."""

import random
from collections import Counter

import pytest

from repro.baselines import (
    collision_free_probability,
    gj04_measure_reliability,
    gj04_run_with_repetition,
    run_gj04_once,
)
from repro.baselines.gj04 import BROADCAST_ROUNDS_PER_ATTEMPT


class TestSingleRun:
    def test_lone_message_delivered(self):
        rng = random.Random(0)
        run = run_gj04_once([42], slots=16, rng=rng)
        assert run.delivered[42] == 1
        assert run.reliable()

    def test_non_interactivity(self):
        run = run_gj04_once([1], slots=4, rng=random.Random(1))
        assert run.broadcast_rounds == BROADCAST_ROUNDS_PER_ATTEMPT == 1

    def test_collision_destroys(self):
        # One slot: two messages always collide.
        run = run_gj04_once([1, 2], slots=1, rng=random.Random(2))
        assert not run.delivered
        assert not run.reliable()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_gj04_once([1], slots=0, rng=random.Random(0))


class TestCollisionRate:
    def test_birthday_formula(self):
        assert collision_free_probability(2, 2) == pytest.approx(0.5)
        assert collision_free_probability(1, 10) == pytest.approx(1.0)
        assert collision_free_probability(11, 10) == 0.0

    def test_measured_matches_formula(self):
        n, slots = 5, 40
        measured = gj04_measure_reliability(n, slots, trials=2000, seed=3)
        predicted = collision_free_probability(n, slots)
        assert measured == pytest.approx(predicted, abs=0.05)

    def test_reliability_decays_with_n(self):
        """The §1.2 criticism: no collision handling, even all-honest."""
        slots = 64
        rates = [
            gj04_measure_reliability(n, slots, trials=800, seed=n)
            for n in (2, 6, 12)
        ]
        assert rates[0] > rates[1] > rates[2]


class TestRepetitionMalleability:
    def test_delivery_by_repetition(self):
        rng = random.Random(4)
        trace = gj04_run_with_repetition([1, 2, 3], slots=4, rng=rng)
        assert trace.delivered >= Counter([1, 2, 3])
        assert trace.broadcast_rounds == trace.attempts

    def test_spurious_dependent_values(self):
        """'...allows the adversary to introduce additional spurious
        values; thus in addition to being unreliable the construction
        becomes malleable' (§1.2)."""
        echoes = 0
        for seed in range(40):
            rng = random.Random(seed)
            trace = gj04_run_with_repetition(
                [10, 20, 30, 40], slots=5, rng=rng
            )
            echoes += trace.echoes
        assert echoes > 0
