"""Tests for the PW96, Zhang'11 and vABH03 baseline models."""

import random
from collections import Counter

import pytest

from repro.baselines import (
    MaximalDisruption,
    NoDisruption,
    all_pairs_with_corrupt,
    batcher_network,
    half_reliability_parameters,
    measure_reliability,
    run_pw96,
    run_vabh03_once,
    run_with_repetition,
    worst_case_runs,
    zhang11_round_count,
    zhang11_shuffle,
)
from repro.fields import gf2k


class TestPW96:
    def test_honest_case_single_run(self):
        trace = run_pw96(n=7, corrupt={1, 2}, strategy=NoDisruption())
        assert trace.runs == 1
        assert trace.delivered

    def test_maximal_disruption_burns_all_pairs(self):
        n, corrupt = 8, {0, 1, 2}
        trace = run_pw96(n, corrupt, MaximalDisruption())
        expected_pairs = all_pairs_with_corrupt(n, corrupt)
        assert set(trace.eliminated_pairs) == expected_pairs
        assert trace.runs == len(expected_pairs) + 1  # final clean run

    def test_worst_case_is_quadratic(self):
        """Footnote 1: Omega(n^2) runs with t = Theta(n)."""
        runs = []
        for n in (8, 16, 32):
            t = (n - 1) // 2
            runs.append(worst_case_runs(n, t))
        assert runs[1] >= 3.5 * runs[0]
        assert runs[2] >= 3.5 * runs[1]

    def test_trace_matches_worst_case_formula(self):
        n, t = 10, 4
        corrupt = set(range(t))
        trace = run_pw96(n, corrupt, MaximalDisruption())
        assert len(trace.eliminated_pairs) == worst_case_runs(n, t)

    def test_player_elimination_is_linear(self):
        """HMP00-style elimination: at most t failed runs."""
        n, corrupt = 12, {0, 1, 2, 3, 4}
        trace = run_pw96(
            n, corrupt, MaximalDisruption(), player_elimination=True
        )
        assert trace.runs <= len(corrupt) + 1

    def test_localization_soundness_enforced(self):
        class Framing(MaximalDisruption):
            def next_disruption(self, corrupt_active, honest_active, burned):
                return frozenset(sorted(honest_active)[:2])  # frame honest

        with pytest.raises(ValueError):
            run_pw96(6, {5}, Framing())

    def test_rounds_scale_with_runs(self):
        trace = run_pw96(6, {0}, MaximalDisruption(), rounds_per_run=4)
        assert trace.rounds == trace.runs * 4


class TestZhang11:
    def test_shuffle_preserves_multiset(self):
        f = gf2k(16)
        rng = random.Random(0)
        inputs = [f(v) for v in (5, 9, 9, 1, 30)]
        trace = zhang11_shuffle(f, inputs, rng)
        assert Counter(v.value for v in trace.shuffled) == Counter(
            v.value for v in inputs
        )

    def test_shuffle_is_actually_random(self):
        f = gf2k(16)
        rng = random.Random(1)
        inputs = [f(v) for v in (1, 2, 3)]
        orders = set()
        for _ in range(50):
            trace = zhang11_shuffle(f, inputs, rng)
            orders.add(tuple(v.value for v in trace.shuffled))
        assert len(orders) == 6  # all 3! permutations appear

    def test_round_count_matches_paper_formula(self):
        """§1.2: r_VSS + r_comp + r_eq + r_mult with RB89 + DFK+06."""
        assert zhang11_round_count() == 7 + 114 + 114 + 3

    def test_shuffle_trace_rounds(self):
        f = gf2k(16)
        trace = zhang11_shuffle(f, [f(1), f(2)], random.Random(2))
        assert trace.rounds == zhang11_round_count()
        assert trace.sub_protocol_invocations > 0

    def test_batcher_network_sorts(self):
        for n in (2, 3, 5, 8, 13):
            net = batcher_network(n)
            rng = random.Random(n)
            values = [rng.randrange(100) for _ in range(n)]
            for a, b in net:
                if values[a] > values[b]:
                    values[a], values[b] = values[b], values[a]
            assert values == sorted(values)


class TestVABH03:
    def test_lone_dart_delivered(self):
        rng = random.Random(0)
        run = run_vabh03_once([42], slots=10, copies=3, rng=rng)
        assert run.delivered[42] >= 1
        assert run.reliable()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_vabh03_once([1], slots=0, copies=1, rng=random.Random(0))

    def test_half_reliability_regime(self):
        """The paper's §1.2 point: per-run reliability around 1/2 (E8)."""
        n = 8
        slots, copies = half_reliability_parameters(n)
        r = measure_reliability(n, slots, copies, trials=600, seed=1)
        assert 0.3 <= r <= 0.75

    def test_our_style_parameters_are_reliable(self):
        """With redundancy (many copies, wide vector) reliability ~ 1."""
        r = measure_reliability(4, slots=400, copies=8, trials=300, seed=2)
        assert r >= 0.99

    def test_repetition_reaches_delivery(self):
        rng = random.Random(3)
        trace = run_with_repetition([1, 2, 3, 4], slots=8, copies=1, rng=rng)
        assert trace.delivered >= Counter([1, 2, 3, 4])

    def test_repetition_is_malleable(self):
        """§1.2's criticism made concrete: across many executions the
        repeating adversary echoes previously revealed honest values, so
        Y \\ X depends on X."""
        echoes = 0
        for seed in range(30):
            rng = random.Random(seed)
            trace = run_with_repetition(
                [10, 20, 30, 40, 50], slots=6, copies=1, rng=rng
            )
            echoes += trace.echoes
        assert echoes > 0
