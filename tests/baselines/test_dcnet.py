"""Tests for the Chaum DC-net baseline."""

import random

import pytest

from repro.baselines import jamming_tamper, run_dcnet
from repro.fields import gf2k
from repro.network import TamperingAdversary
from repro.baselines.dcnet import dcnet_party_program


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


class TestHonestDCNet:
    def test_single_sender_anonymous_delivery(self, f):
        res = run_dcnet(f, n=5, senders={2: (f(777), 3)}, num_slots=8, seed=1)
        for out in res.outputs.values():
            assert out.slots[3] == f(777)
            assert out.messages() == [f(777)]

    def test_multiple_senders_distinct_slots(self, f):
        senders = {0: (f(10), 0), 2: (f(20), 4), 4: (f(30), 7)}
        res = run_dcnet(f, n=5, senders=senders, num_slots=8, seed=2)
        out = res.outputs[1]
        assert out.slots[0] == f(10)
        assert out.slots[4] == f(20)
        assert out.slots[7] == f(30)

    def test_collision_destroys_both(self, f):
        """Characteristic 2: equal messages in the same slot cancel."""
        senders = {0: (f(5), 2), 1: (f(5), 2)}
        res = run_dcnet(f, n=4, senders=senders, num_slots=4, seed=3)
        assert res.outputs[2].slots[2] == f(0)

    def test_collision_of_distinct_messages_is_garbage(self, f):
        senders = {0: (f(5), 2), 1: (f(9), 2)}
        res = run_dcnet(f, n=4, senders=senders, num_slots=4, seed=4)
        assert res.outputs[2].slots[2] == f(5) + f(9)  # neither message

    def test_two_rounds_only(self, f):
        res = run_dcnet(f, n=4, senders={0: (f(1), 0)}, num_slots=2, seed=5)
        assert res.metrics.rounds == 2
        assert res.metrics.broadcast_rounds == 1

    def test_all_views_agree(self, f):
        res = run_dcnet(f, n=6, senders={1: (f(3), 1)}, num_slots=4, seed=6)
        views = [tuple(v.value for v in out.slots) for out in res.outputs.values()]
        assert len(set(views)) == 1

    def test_bad_slot_rejected(self, f):
        with pytest.raises(ValueError):
            prog = dcnet_party_program(
                0, 3, f, 4, f(1), 9, random.Random(0)
            )
            next(prog)


class TestJamming:
    def test_jammer_destroys_untraceably(self, f):
        """The motivating weakness: garbage everywhere, no attribution."""
        rng = random.Random(7)
        n = 5
        senders = {0: (f(111), 1), 1: (f(222), 5)}

        def corrupt_prog():
            return dcnet_party_program(
                4, n, f, 8, None, None, random.Random((8 << 10) | 4)
            )

        adv = TamperingAdversary(
            {4}, {4: corrupt_prog()}, jamming_tamper(f, 8, rng)
        )
        res = run_dcnet(f, n=n, senders=senders, num_slots=8, seed=8, adversary=adv)
        out = res.outputs[0]
        # Honest messages are gone (w.h.p. the jam hits their slots)...
        assert out.slots[1] != f(111) or out.slots[5] != f(222)
        # ...and the transcript gives honest parties no way to tell who
        # jammed: every published vector is uniformly distributed.
        # (Checked structurally: the jammer's broadcast is well-formed.)
        assert res.metrics.rounds == 2

    def test_silent_party_harmless_if_pads_symmetric(self, f):
        """A party that sends nothing removes its pads from both sides of
        the cancellation only where it was the chooser; the default-zero
        convention keeps the sum of the *remaining* publications clean
        for slots it never padded... i.e. the DC-net breaks down.  We
        assert the documented failure mode: outputs may be garbage but
        execution completes."""
        from repro.network import SilentAdversary

        res = run_dcnet(
            f,
            n=4,
            senders={0: (f(42), 0)},
            num_slots=2,
            seed=9,
            adversary=SilentAdversary({3}),
        )
        assert res.metrics.rounds == 2  # terminates regardless
