"""Tests for the runnable PW96-style channel (traps + localization loop)."""

import random

import pytest

from repro.baselines.pw96_channel import run_pw96_channel
from repro.fields import gf2k


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


class TestHonestDelivery:
    def test_no_corruption_fast(self, f):
        trace = run_pw96_channel(
            f, n=5, corrupt=set(), messages={1: 111, 3: 333},
            rng=random.Random(0),
        )
        assert not trace.gave_up
        assert trace.delivered[111] == 1
        assert trace.delivered[333] == 1
        assert trace.investigations == 0
        assert trace.rounds <= 4  # only slot collisions can delay

    def test_no_messages_terminates(self, f):
        trace = run_pw96_channel(
            f, n=4, corrupt=set(), messages={}, rng=random.Random(1)
        )
        assert trace.rounds == 0


class TestUnderJamming:
    def test_delivery_despite_persistent_jammer(self, f):
        trace = run_pw96_channel(
            f, n=5, corrupt={4}, messages={1: 77}, rng=random.Random(2),
        )
        assert not trace.gave_up
        assert trace.delivered[77] == 1
        # The jammer burned pairs before delivery became possible.
        assert trace.investigations >= 1
        assert all(4 in pair for pair in trace.burned_pairs)

    def test_round_count_grows_with_corruption(self, f):
        """More corrupt parties => more burnable pairs => more rounds
        (the Omega(n^2) mechanism, measured end-to-end)."""
        rounds = []
        for t in (1, 2, 3):
            n = 8
            trace = run_pw96_channel(
                f, n=n, corrupt=set(range(t)), messages={7: 55},
                rng=random.Random(3),
            )
            assert not trace.gave_up
            rounds.append(trace.rounds)
        assert rounds[0] < rounds[1] < rounds[2]
        # Each corrupt party can burn ~n-ish pairs before giving up.
        assert rounds[2] >= 15

    def test_pairs_are_never_reburned(self, f):
        trace = run_pw96_channel(
            f, n=6, corrupt={0, 1}, messages={5: 9}, rng=random.Random(4),
        )
        assert len(set(trace.burned_pairs)) == len(trace.burned_pairs)

    def test_player_elimination_is_much_faster(self, f):
        """The [HMP00] improvement from footnote 1, measured."""
        slow = run_pw96_channel(
            f, n=8, corrupt={0, 1, 2}, messages={7: 42},
            rng=random.Random(5),
        )
        fast = run_pw96_channel(
            f, n=8, corrupt={0, 1, 2}, messages={7: 42},
            rng=random.Random(5), player_elimination=True,
        )
        assert not slow.gave_up and not fast.gave_up
        assert fast.rounds < slow.rounds
        assert fast.delivered[42] == 1

    def test_localizations_always_implicate_corrupt(self, f):
        trace = run_pw96_channel(
            f, n=6, corrupt={2}, messages={0: 5}, rng=random.Random(6),
        )
        for pair in trace.burned_pairs:
            assert 2 in pair
        for pid in trace.eliminated_players:
            assert pid == 2


class TestModelAgreement:
    def test_measured_pairs_match_worst_case_formula(self, f):
        """The executable channel burns exactly the t(n-t)+C(t,2) pairs
        the abstract game (and footnote 1) predicts."""
        from repro.baselines import worst_case_runs

        for n, t in ((4, 1), (6, 2), (8, 3)):
            trace = run_pw96_channel(
                f, n=n, corrupt=set(range(t)), messages={n - 1: 5},
                rng=random.Random(n),
            )
            assert not trace.gave_up
            assert len(trace.burned_pairs) == worst_case_runs(n, t)
