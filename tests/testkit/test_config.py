"""CampaignConfig: identity, seed derivation, (de)serialization."""

import pytest

from repro.testkit import CampaignConfig, derive_seed

BASE = dict(name="t", n=3, t=1, d=2, ell=16, kappa=8, num_checks=2)


class TestDeriveSeed:
    def test_deterministic_and_63_bit(self):
        s = derive_seed("a", 1, "b")
        assert s == derive_seed("a", 1, "b")
        assert 0 <= s < 2**63

    def test_distinct_parts_distinct_seeds(self):
        assert derive_seed("config", 0, "x") != derive_seed("config", 1, "x")
        assert derive_seed("config", 0, "x") != derive_seed("trial", 0, "x")

    def test_no_hash_randomization_dependence(self):
        """Known-answer: the derivation must be stable across processes
        and Python versions (SHA-256, not hash())."""
        assert derive_seed("config", 0, "k") == derive_seed("config", "0", "k")


class TestConfigIdentity:
    def test_key_covers_every_axis(self):
        config = CampaignConfig(**BASE)
        key = config.key()
        for fragment in ("n=3", "t=1", "d=2", "ell=16", "kappa=8",
                         "checks=2", "strategy=honest", "fault=none",
                         "substrate=auto", "corrupt=0", "trials=2"):
            assert fragment in key

    def test_name_is_cosmetic(self):
        a = CampaignConfig(**{**BASE, "name": "one"})
        b = CampaignConfig(**{**BASE, "name": "two"})
        assert a.key() == b.key()
        assert a.config_seed(7) == b.config_seed(7)

    def test_trial_seeds_distinct_per_trial_and_campaign_seed(self):
        config = CampaignConfig(**BASE)
        seeds = {config.trial_seed(0, i) for i in range(10)}
        assert len(seeds) == 10
        assert config.trial_seed(0, 0) != config.trial_seed(1, 0)

    def test_axis_change_changes_seed(self):
        a = CampaignConfig(**BASE)
        b = a.with_(strategy="jamming", corrupt_count=1)
        assert a.config_seed(0) != b.config_seed(0)


class TestConfigSerialization:
    def test_json_roundtrip(self):
        config = CampaignConfig(
            **{**BASE, "strategy": "jamming", "fault": "drop-half",
               "substrate": "scalar", "corrupt_count": 1, "trials": 9}
        )
        assert CampaignConfig.from_json(config.to_json()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            CampaignConfig.from_dict({**BASE, "bogus": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            CampaignConfig.from_dict({"n": 3, "t": 1})

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            CampaignConfig.from_json("[1, 2]")


class TestConfigValidation:
    def test_adversarial_strategy_needs_corruption(self):
        with pytest.raises(ValueError, match="corrupt_count >= 1"):
            CampaignConfig(**{**BASE, "strategy": "jamming"})

    def test_fault_needs_corruption(self):
        with pytest.raises(ValueError, match="corrupt_count >= 1"):
            CampaignConfig(**{**BASE, "fault": "drop-half"})

    def test_corrupt_count_bounded_by_t(self):
        with pytest.raises(ValueError, match="exceeds t"):
            CampaignConfig(**{**BASE, "corrupt_count": 2})

    def test_unknown_strategy_rejected_by_validate(self):
        config = CampaignConfig(
            **{**BASE, "strategy": "nope", "corrupt_count": 1}
        )
        with pytest.raises(ValueError, match="unknown strategy"):
            config.validate()

    def test_unknown_fault_rejected_by_validate(self):
        config = CampaignConfig(**{**BASE, "fault": "nope",
                                   "corrupt_count": 1})
        with pytest.raises(ValueError, match="unknown fault"):
            config.validate()

    def test_strategy_min_d_enforced(self):
        config = CampaignConfig(
            **{**BASE, "d": 1, "strategy": "guessing-cheater",
               "corrupt_count": 1}
        )
        with pytest.raises(ValueError, match="needs d >= 2"):
            config.validate()

    def test_params_constraints_surface(self):
        config = CampaignConfig(**{**BASE, "ell": 300})  # 2^8 <= 300
        with pytest.raises(ValueError, match="field too small"):
            config.validate()
