"""The campaign telemetry store and the comm-conformance invariant."""

from __future__ import annotations

import json

from repro.testkit import CampaignConfig, run_config
from repro.testkit.telemetry import TelemetryStore, trial_records

TINY = CampaignConfig(
    name="telemetry-tiny", n=3, t=1, d=2, ell=16, kappa=8,
    num_checks=1, trials=2,
)


def test_trial_outcomes_carry_comm_metrics():
    result = run_config(TINY)
    for trial in result.evidence.trials:
        assert trial.rounds > 0
        assert trial.private_messages > 0
        assert trial.field_elements_sent > 0


def test_trial_records_flatten_config_axes():
    result = run_config(TINY, campaign_seed=5)
    records = trial_records(result, campaign_seed=5, stamp="T")
    assert len(records) == TINY.trials
    for record in records:
        assert record["config"] == "telemetry-tiny"
        assert record["strategy"] == TINY.strategy
        assert record["campaign_seed"] == 5
        assert record["stamp"] == "T"
        assert record["rounds"] > 0
        assert isinstance(record["honest_delivered"], bool)


def test_store_appends_and_loads(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    store = TelemetryStore(path)
    result = run_config(TINY)
    written = store.append_results([result], stamp="T1")
    assert written == TINY.trials
    # Appending again accumulates (the longitudinal CI use case).
    store.append_results([result], stamp="T2")
    records = store.load()
    assert len(records) == 2 * TINY.trials
    assert {r["stamp"] for r in records} == {"T1", "T2"}


def test_store_tolerates_missing_and_torn_lines(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    assert TelemetryStore(path).load() == []
    path.write_text(
        json.dumps({"config": "ok", "rounds": 1}) + "\n"
        + '{"torn": \n'
        + "not json at all\n"
        + json.dumps({"config": "ok2", "rounds": 2}) + "\n",
        encoding="utf-8",
    )
    records = TelemetryStore(path).load()
    assert [r["config"] for r in records] == ["ok", "ok2"]


def test_comm_conformance_checker_passes_on_honest_config():
    result = run_config(TINY)
    outcome = next(
        o for o in result.outcomes if o.invariant == "comm-conformance"
    )
    assert outcome.applicable and outcome.passed
    assert result.evidence.comm_ok is True
    assert result.evidence.comm_divergences == []


def test_comm_conformance_skips_without_a_trace():
    from repro.testkit.invariants import CommConformance, ConfigEvidence

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
    )
    outcome = CommConformance().evaluate(ev)
    assert not outcome.applicable


def test_comm_conformance_fails_on_divergence():
    from repro.testkit.invariants import CommConformance, ConfigEvidence

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
        comm_ok=False, comm_divergences=["E2: observed 9 broadcast rounds"],
    )
    outcome = CommConformance().evaluate(ev)
    assert outcome.applicable and not outcome.passed
    assert "E2" in outcome.message


def test_trial_outcomes_and_records_carry_makespan():
    result = run_config(TINY, campaign_seed=5)
    records = trial_records(result, campaign_seed=5, stamp="T")
    for trial, record in zip(result.evidence.trials, records):
        # Lockstep campaigns run under the zero models: the makespan is
        # recorded, and it is exactly zero.
        assert trial.makespan_ms == 0.0
        assert trial.to_dict()["makespan_ms"] == 0.0
        assert record["makespan_ms"] == 0.0


def test_timing_conformance_checker_passes_on_honest_config():
    result = run_config(TINY)
    outcome = next(
        o for o in result.outcomes if o.invariant == "timing-conformance"
    )
    assert outcome.applicable and outcome.passed
    assert result.evidence.timing_ok is True
    assert result.evidence.timing_divergences == []


def test_timing_conformance_skips_without_a_trace():
    from repro.testkit.invariants import ConfigEvidence, TimingConformance

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
    )
    assert not TimingConformance().evaluate(ev).applicable


def test_timing_conformance_fails_on_divergence():
    from repro.testkit.invariants import ConfigEvidence, TimingConformance

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
        timing_ok=False,
        timing_divergences=[
            "trace makespan 1.000000 ms != runtime accounting 2.000000 ms"
        ],
    )
    outcome = TimingConformance().evaluate(ev)
    assert outcome.applicable and not outcome.passed
    assert "runtime accounting" in outcome.message


def test_timing_conformance_registered_in_default_registry():
    from repro.testkit import default_registry

    assert "timing-conformance" in default_registry()


def test_timing_conformance_helper_divergence_cases():
    from types import SimpleNamespace

    from repro.obs import Tracer, without_timing_fields
    from repro.testkit.runner import _timing_conformance

    tracer = Tracer()
    tracer.run_start(n=3, t=1)
    tracer.record_timing_model(
        latency={"model": "zero"}, compute={"model": "zero"},
    )
    tracer.record_round(0, messages=0, elements=0, t_start=0.0, t_end=2.0)
    tracer.run_end(rounds=1, makespan_ms=2.0)

    ok, divergences = _timing_conformance(tracer, 2.0)
    assert ok and divergences == []

    # Trace and runtime accounting disagree on the makespan.
    ok, divergences = _timing_conformance(tracer, 5.0)
    assert not ok
    assert any("runtime accounting" in d for d in divergences)

    # A traced trial without stamps is itself a conformance failure:
    # both transports stamp v4 virtual times.
    stripped = SimpleNamespace(events=without_timing_fields(tracer.events))
    ok, divergences = _timing_conformance(stripped, 0.0)
    assert not ok
    assert any("no virtual-time stamps" in d for d in divergences)

    # A round window running backwards is flagged.
    bad = Tracer()
    bad.run_start(n=3, t=1)
    bad.record_timing_model(
        latency={"model": "zero"}, compute={"model": "zero"},
    )
    bad.record_round(0, messages=0, elements=0, t_start=3.0, t_end=1.0)
    bad.run_end(rounds=1, makespan_ms=1.0)
    ok, divergences = _timing_conformance(bad, 1.0)
    assert not ok
    assert any("non-monotone window" in d for d in divergences)
