"""The campaign telemetry store and the comm-conformance invariant."""

from __future__ import annotations

import json

from repro.testkit import CampaignConfig, run_config
from repro.testkit.telemetry import TelemetryStore, trial_records

TINY = CampaignConfig(
    name="telemetry-tiny", n=3, t=1, d=2, ell=16, kappa=8,
    num_checks=1, trials=2,
)


def test_trial_outcomes_carry_comm_metrics():
    result = run_config(TINY)
    for trial in result.evidence.trials:
        assert trial.rounds > 0
        assert trial.private_messages > 0
        assert trial.field_elements_sent > 0


def test_trial_records_flatten_config_axes():
    result = run_config(TINY, campaign_seed=5)
    records = trial_records(result, campaign_seed=5, stamp="T")
    assert len(records) == TINY.trials
    for record in records:
        assert record["config"] == "telemetry-tiny"
        assert record["strategy"] == TINY.strategy
        assert record["campaign_seed"] == 5
        assert record["stamp"] == "T"
        assert record["rounds"] > 0
        assert isinstance(record["honest_delivered"], bool)


def test_store_appends_and_loads(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    store = TelemetryStore(path)
    result = run_config(TINY)
    written = store.append_results([result], stamp="T1")
    assert written == TINY.trials
    # Appending again accumulates (the longitudinal CI use case).
    store.append_results([result], stamp="T2")
    records = store.load()
    assert len(records) == 2 * TINY.trials
    assert {r["stamp"] for r in records} == {"T1", "T2"}


def test_store_tolerates_missing_and_torn_lines(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    assert TelemetryStore(path).load() == []
    path.write_text(
        json.dumps({"config": "ok", "rounds": 1}) + "\n"
        + '{"torn": \n'
        + "not json at all\n"
        + json.dumps({"config": "ok2", "rounds": 2}) + "\n",
        encoding="utf-8",
    )
    records = TelemetryStore(path).load()
    assert [r["config"] for r in records] == ["ok", "ok2"]


def test_comm_conformance_checker_passes_on_honest_config():
    result = run_config(TINY)
    outcome = next(
        o for o in result.outcomes if o.invariant == "comm-conformance"
    )
    assert outcome.applicable and outcome.passed
    assert result.evidence.comm_ok is True
    assert result.evidence.comm_divergences == []


def test_comm_conformance_skips_without_a_trace():
    from repro.testkit.invariants import CommConformance, ConfigEvidence

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
    )
    outcome = CommConformance().evaluate(ev)
    assert not outcome.applicable


def test_comm_conformance_fails_on_divergence():
    from repro.testkit.invariants import CommConformance, ConfigEvidence

    ev = ConfigEvidence(
        config=TINY, params=TINY.params(), corrupted=(), trials=[],
        comm_ok=False, comm_divergences=["E2: observed 9 broadcast rounds"],
    )
    outcome = CommConformance().evaluate(ev)
    assert outcome.applicable and not outcome.passed
    assert "E2" in outcome.message
