"""Invariant checkers against synthetic evidence (no protocol runs)."""

import math

import pytest

from repro.testkit import CampaignConfig, binomial_tail, default_registry
from repro.testkit.invariants import (
    ConfigEvidence,
    TrialOutcome,
    binomial_lower_tail,
)


def _evidence(trials, *, strategy="honest", fault="none", corrupt_count=0,
              d=2, ell=16, num_checks=2, schedule_ok=None, divergences=()):
    config = CampaignConfig(
        name="synthetic", n=3, t=1, d=d, ell=ell, kappa=8,
        num_checks=num_checks, strategy=strategy, fault=fault,
        corrupt_count=corrupt_count, trials=len(trials),
    )
    corrupted = tuple(range(3 - corrupt_count, 3))
    return ConfigEvidence(
        config=config,
        params=config.params(),
        corrupted=corrupted,
        trials=list(trials),
        schedule_ok=schedule_ok,
        schedule_divergences=list(divergences),
    )


def _trial(i, *, surviving=(), delivered=True, output_total=3,
           agreement=True, anonymity_ok=None):
    return TrialOutcome(
        trial=i, seed=1000 + i, challenge=i, qualified=(0, 1, 2),
        surviving=tuple(surviving), honest_delivered=delivered,
        output_total=output_total, agreement=agreement,
        anonymity_ok=anonymity_ok,
    )


class TestBinomialTail:
    def test_exact_small_case(self):
        # Pr[Bin(4, 1/2) >= 2] = 11/16
        assert math.isclose(binomial_tail(4, 0.5, 2), 11 / 16)

    def test_boundaries(self):
        assert binomial_tail(10, 0.3, 0) == 1.0
        assert binomial_tail(10, 0.3, 11) == 0.0
        assert binomial_tail(10, 0.0, 1) == 0.0
        assert binomial_tail(10, 1.0, 10) == 1.0

    def test_lower_tail_complements_upper(self):
        for k in range(11):
            total = binomial_lower_tail(10, 0.4, k) + binomial_tail(
                10, 0.4, k + 1
            )
            assert math.isclose(total, 1.0, rel_tol=1e-9)

    def test_deterministic_failure_is_astronomical(self):
        # A real delivery bug fails all trials: tail = p^T.
        assert binomial_tail(96, 0.3, 96) == pytest.approx(0.3**96)


def _check(evidence, invariant):
    registry = default_registry()
    return registry[invariant].evaluate(evidence)


class TestClaim1Checker:
    def test_skips_proper_strategies(self):
        out = _check(_evidence([_trial(0)]), "claim1-survival")
        assert not out.applicable

    def test_skips_under_faults(self):
        ev = _evidence(
            [_trial(0)], strategy="jamming", fault="drop-half",
            corrupt_count=1,
        )
        assert not _check(ev, "claim1-survival").applicable

    def test_accepts_on_target_rate(self):
        # 24/96 survivals at num_checks=2 is exactly 2^-2.
        trials = [
            _trial(i, surviving=(2,) if i < 24 else ())
            for i in range(96)
        ]
        ev = _evidence(trials, strategy="jamming", corrupt_count=1)
        out = _check(ev, "claim1-survival")
        assert out.applicable and out.passed

    def test_flags_always_surviving_cheater(self):
        """A broken cut-and-choose (cheater always passes) must fire."""
        trials = [_trial(i, surviving=(2,)) for i in range(96)]
        ev = _evidence(trials, strategy="jamming", corrupt_count=1)
        out = _check(ev, "claim1-survival")
        assert out.applicable and not out.passed
        assert "observed 96/96" in out.message

    def test_flags_never_surviving_cheater_two_sided(self):
        """Claim 1 is tight: rejecting what must be accepted is a bug
        too (e.g. the proof rejecting every honest-looking copy)."""
        trials = [_trial(i) for i in range(96)]
        ev = _evidence(trials, strategy="jamming", corrupt_count=1,
                       num_checks=1)
        out = _check(ev, "claim1-survival")
        assert out.applicable and not out.passed


class TestClaim2DeliveryChecker:
    def test_vacuous_bound_skips(self):
        # jamming at num_checks=1: survival term 1/2 makes the
        # per-trial bound >= 0.5 — no statistical power, must skip.
        ev = _evidence([_trial(0)], strategy="jamming", corrupt_count=1,
                       num_checks=1)
        out = _check(ev, "claim2-delivery")
        assert not out.applicable

    def test_accepts_full_delivery(self):
        ev = _evidence([_trial(i) for i in range(20)])
        out = _check(ev, "claim2-delivery")
        assert out.applicable and out.passed

    def test_flags_deterministic_loss(self):
        ev = _evidence([_trial(i, delivered=False) for i in range(40)])
        out = _check(ev, "claim2-delivery")
        assert out.applicable and not out.passed
        assert "40/40" in out.message


class TestOutputBoundChecker:
    def test_skips_at_threshold_one(self):
        # d=2 -> ceil(d/2)=1: single collisions mint garbage, vacuous.
        ev = _evidence([_trial(0, output_total=50)], d=2)
        assert not _check(ev, "output-bound").applicable

    def test_flags_spurious_output(self):
        ev = _evidence([_trial(i, output_total=7) for i in range(8)], d=3)
        out = _check(ev, "output-bound")
        assert out.applicable and not out.passed

    def test_ignores_trials_with_surviving_improper_vector(self):
        """|Y| <= n is only promised when no improper vector survived."""
        trials = [_trial(i, surviving=(2,), output_total=50)
                  for i in range(8)]
        ev = _evidence(trials, strategy="jamming", corrupt_count=1, d=3)
        out = _check(ev, "output-bound")
        assert not out.applicable  # every trial excluded


class TestProperPassChecker:
    def test_flags_disqualified_proper_prover(self):
        trials = [_trial(0, surviving=(2,)), _trial(1, surviving=())]
        ev = _evidence(trials, strategy="zero", corrupt_count=1)
        out = _check(ev, "proper-pass")
        assert out.applicable and not out.passed
        assert out.stats["failing_trials"] == [1]

    def test_skips_improper_strategies_and_faults(self):
        ev = _evidence([_trial(0)], strategy="jamming", corrupt_count=1)
        assert not _check(ev, "proper-pass").applicable
        ev = _evidence([_trial(0)], fault="flip", corrupt_count=1)
        assert not _check(ev, "proper-pass").applicable


class TestHardCheckers:
    def test_agreement(self):
        good = _evidence([_trial(0), _trial(1)])
        assert _check(good, "agreement").passed
        bad = _evidence([_trial(0), _trial(1, agreement=False)])
        out = _check(bad, "agreement")
        assert out.applicable and not out.passed

    def test_anonymity_skips_without_probe(self):
        assert not _check(_evidence([_trial(0)]), "anonymity").applicable

    def test_anonymity_flags_distinguishable_views(self):
        ev = _evidence([_trial(0, anonymity_ok=False)])
        out = _check(ev, "anonymity")
        assert out.applicable and not out.passed

    def test_schedule_conformance(self):
        assert not _check(
            _evidence([_trial(0)]), "schedule-conformance"
        ).applicable
        ok = _evidence([_trial(0)], schedule_ok=True)
        assert _check(ok, "schedule-conformance").passed
        bad = _evidence(
            [_trial(0)], schedule_ok=False,
            divergences=["round 3: broadcast used, predicted the opposite"],
        )
        out = _check(bad, "schedule-conformance")
        assert not out.passed and "round 3" in out.message
