"""The testkit transport axis: seed policy, serialization, equivalence.

The transport is an *execution engine* choice, not part of protocol
identity: ``key()`` (and hence every derived trial seed) must ignore
it, so a cell replayed on another transport reruns the exact same
trials.  That policy is what makes campaign-level transport
equivalence checkable at all.
"""

import pytest

from repro.testkit.config import CampaignConfig
from repro.testkit.grids import grid_configs
from repro.testkit.runner import run_config

_CELL = dict(n=3, t=1, d=2, ell=16, kappa=8, num_checks=2, trials=3)


class TestSeedPolicy:
    def test_key_ignores_transport(self):
        base = CampaignConfig(name="a", **_CELL)
        other = base.with_(transport="async")
        assert base.key() == other.key()
        assert base.config_seed(7) == other.config_seed(7)
        assert [base.trial_seed(7, t) for t in range(3)] == [
            other.trial_seed(7, t) for t in range(3)
        ]

    def test_to_dict_omits_default_transport(self):
        base = CampaignConfig(name="a", **_CELL)
        assert "transport" not in base.to_dict()
        assert base.with_(transport="async").to_dict()["transport"] == "async"

    def test_json_round_trip(self):
        cfg = CampaignConfig(name="a", **_CELL, transport="async")
        import json

        again = CampaignConfig.from_json(json.dumps(cfg.to_dict()))
        assert again == cfg

    def test_validate_rejects_unknown_transport(self):
        cfg = CampaignConfig(name="a", **_CELL, transport="smoke-signals")
        with pytest.raises(ValueError, match="transport"):
            cfg.validate()

    def test_smoke_grid_has_transport_cells(self):
        configs = grid_configs("smoke")
        async_cells = [c for c in configs if c.transport == "async"]
        assert len(async_cells) >= 3
        # Honest, adversarial, and faulted shapes are all represented.
        assert {c.strategy for c in async_cells} >= {"honest", "jamming"}
        assert "crash-share" in {c.fault for c in async_cells}

    def test_grid_uniqueness_is_per_transport(self):
        """Same identity key on different transports is legal (the axis
        working as intended); on the same transport it is a collision."""
        from repro.testkit import grids

        base = CampaignConfig(name="u/lockstep", **_CELL)
        twin = base.with_(name="u/async", transport="async")
        dupe = base.with_(name="u/dupe")
        grids.GRIDS["_pair"] = lambda: [base, twin]
        grids.GRIDS["_clash"] = lambda: [base, dupe]
        try:
            assert len(grid_configs("_pair")) == 2
            with pytest.raises(ValueError, match="same identity key"):
                grid_configs("_clash")
        finally:
            del grids.GRIDS["_pair"], grids.GRIDS["_clash"]


def _fingerprint(result):
    """Everything checkers consume, minus wall-clock noise."""
    return [
        t.to_dict() for t in result.evidence.trials
    ], [(o.invariant, o.applicable, o.passed) for o in result.outcomes]


class TestCampaignEquivalence:
    def test_mini_cell_identical_across_transports(self):
        cfg = CampaignConfig(name="eq/honest", **_CELL)
        r_lock = run_config(cfg, campaign_seed=5)
        r_async = run_config(cfg.with_(transport="async"), campaign_seed=5)
        assert r_lock.config_seed == r_async.config_seed
        assert _fingerprint(r_lock) == _fingerprint(r_async)
        assert r_lock.ok and r_async.ok

    def test_adversarial_cell_identical_across_transports(self):
        cfg = CampaignConfig(
            name="eq/jamming", **_CELL, strategy="jamming", corrupt_count=1
        )
        r_lock = run_config(cfg, campaign_seed=9)
        r_async = run_config(cfg.with_(transport="async"), campaign_seed=9)
        assert _fingerprint(r_lock) == _fingerprint(r_async)

    @pytest.mark.campaign
    def test_smoke_grid_identical_across_transports(self):
        """The full smoke grid replayed on the async engine: every
        trial outcome and checker verdict must match lockstep."""
        for cfg in grid_configs("smoke"):
            base = cfg.with_(transport="lockstep")
            twin = cfg.with_(transport="async")
            r_lock = run_config(base, campaign_seed=0)
            r_async = run_config(twin, campaign_seed=0)
            assert _fingerprint(r_lock) == _fingerprint(r_async), cfg.name
