"""The shrinker: minimal reproducers for violating configs."""

from repro.testkit import CampaignConfig, run_config, shrink_config
from repro.testkit.cli import build_registry


def _big_config(**kw):
    base = dict(
        name="shrink-me", n=5, t=2, d=4, ell=64, kappa=16, num_checks=3,
        strategy="jamming", fault="drop-half", substrate="scalar",
        corrupt_count=2, trials=8,
    )
    base.update(kw)
    return CampaignConfig(**base)


class TestShrinkWithInjectedChecker:
    """An intentionally-broken (always-failing) checker must shrink to
    the smallest expressible config — the acceptance-criteria path."""

    def test_shrinks_every_axis_to_the_floor(self):
        registry = build_registry(selftest_break="broken")
        result = shrink_config(
            _big_config(), "broken", campaign_seed=0, registry=registry
        )
        m = result.minimal
        assert result.shrank and result.steps
        assert m.fault == "none"
        assert m.strategy == "honest"
        assert m.corrupt_count == 0
        assert m.n == 3
        assert m.d == 1
        assert m.ell == 1
        assert m.num_checks == 1
        assert m.kappa == 8
        assert m.substrate == "auto"
        assert m.trials == 1

    def test_minimal_config_still_violates(self):
        registry = build_registry(selftest_break="broken")
        result = shrink_config(
            _big_config(), "broken", campaign_seed=0, registry=registry
        )
        rerun = run_config(result.minimal, 0, registry)
        assert any(
            o.invariant == "broken" and o.applicable and not o.passed
            for o in rerun.outcomes
        )

    def test_shrink_is_deterministic(self):
        registry = build_registry(selftest_break="broken")
        a = shrink_config(_big_config(), "broken", registry=registry)
        b = shrink_config(_big_config(), "broken", registry=registry)
        assert a.to_dict() == b.to_dict()

    def test_attempt_budget_is_respected(self):
        registry = build_registry(selftest_break="broken")
        result = shrink_config(
            _big_config(), "broken", registry=registry, max_attempts=3
        )
        assert result.attempts <= 3
        assert result.exhausted


class TestShrinkAgainstHealthyProtocol:
    def test_non_firing_invariant_does_not_shrink(self):
        """If the invariant never fires on any candidate, the shrinker
        keeps the original config and records zero steps."""
        registry = build_registry()
        config = CampaignConfig(
            name="healthy", n=3, t=1, d=2, ell=16, kappa=8, num_checks=2,
            trials=1,
        )
        result = shrink_config(config, "agreement", registry=registry)
        assert not result.shrank
        assert result.steps == []
