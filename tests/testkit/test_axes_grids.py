"""The strategy/fault axes and the named campaign grids."""

import random

import pytest

from repro.core.layout import ProverMaterial
from repro.core.params import AnonChanParams
from repro.testkit import FAULTS, GRIDS, STRATEGIES, grid_configs
from repro.vss.costs import VSSCost

PARAMS = AnonChanParams(n=3, t=1, kappa=8, ell=16, d=2, num_checks=2)
COST = VSSCost(share_rounds=1, share_broadcast_rounds=0)


class TestStrategyAxis:
    def test_registry_covers_the_adversary_catalogue(self):
        assert {"honest", "guessing-cheater", "jamming", "zero",
                "targeted", "dependent-input"} <= set(STRATEGIES)

    def test_honest_builds_no_material(self):
        assert STRATEGIES["honest"].build(PARAMS, 2, random.Random(0)) is None

    @pytest.mark.parametrize(
        "name", [n for n in STRATEGIES if n != "honest"]
    )
    def test_adversarial_strategies_build_prover_material(self, name):
        spec = STRATEGIES[name]
        material = spec.build(PARAMS, 2, random.Random(0))
        assert isinstance(material, ProverMaterial)

    def test_survival_probability_declarations(self):
        assert STRATEGIES["jamming"].survival_p(PARAMS) == 0.25
        assert STRATEGIES["guessing-cheater"].survival_p(PARAMS) == 0.25
        assert STRATEGIES["zero"].survival_p(PARAMS) == 1.0
        assert STRATEGIES["honest"].survival_p(PARAMS) == 1.0

    def test_improper_flags(self):
        improper = {n for n, s in STRATEGIES.items() if s.improper}
        assert improper == {"guessing-cheater", "jamming"}


class TestFaultAxis:
    def test_none_builds_no_tamper(self):
        assert FAULTS["none"].build(PARAMS, COST, random.Random(0)) is None

    @pytest.mark.parametrize("name", [n for n in FAULTS if n != "none"])
    def test_faults_build_callable_tampers(self, name):
        tamper = FAULTS[name].build(PARAMS, COST, random.Random(0))
        assert callable(tamper)

    def test_crash_points_track_the_vss_cost(self):
        """crash-mid must crash *after* the sharing phase, wherever the
        cost profile puts it."""
        from repro.network import RoundOutput, RushedView

        deep = VSSCost(share_rounds=3, share_broadcast_rounds=1)
        tamper = FAULTS["crash-mid"].build(PARAMS, deep, random.Random(0))
        out = RoundOutput(private={0: 1})
        alive = tamper(2, RushedView(2, {}, {}), out)
        dead = tamper(2, RushedView(3, {}, {}), out)
        assert alive.private and not dead.private


class TestGrids:
    def test_known_grid_names(self):
        assert {"mini", "smoke", "nightly"} <= set(GRIDS)

    def test_unknown_grid_raises(self):
        with pytest.raises(KeyError, match="unknown grid"):
            grid_configs("bogus")

    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_grids_validate_and_have_unique_keys(self, name):
        configs = grid_configs(name)
        keys = [c.key() for c in configs]
        assert len(set(keys)) == len(keys)

    def test_smoke_grid_is_a_real_campaign(self):
        """The acceptance bar: >= 24 configs crossing all four axes."""
        configs = grid_configs("smoke")
        assert len(configs) >= 24
        strategies = {c.strategy for c in configs}
        faults = {c.fault for c in configs}
        substrates = {c.substrate for c in configs}
        sizes = {(c.n, c.d, c.ell) for c in configs}
        assert len(strategies) >= 5
        assert faults == set(FAULTS)
        assert {"scalar", "vectorized"} <= substrates
        assert len(sizes) >= 4

    def test_smoke_contains_claim1_measurement_block(self):
        """High-trial improper-strategy cells at several num_checks, so
        the 2^-kappa survival rate is empirically measurable."""
        configs = grid_configs("smoke")
        claim1 = [
            c for c in configs
            if STRATEGIES[c.strategy].improper and c.fault == "none"
            and c.corrupt_count == 1 and c.trials >= 64
        ]
        assert {c.num_checks for c in claim1} >= {1, 2, 3}

    def test_grid_enumeration_is_deterministic(self):
        assert [c.key() for c in grid_configs("smoke")] == [
            c.key() for c in grid_configs("smoke")
        ]

    def test_nightly_extends_smoke(self):
        smoke = {c.key() for c in grid_configs("smoke")}
        nightly = {c.key() for c in grid_configs("nightly")}
        assert smoke < nightly
