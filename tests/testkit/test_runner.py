"""run_config / run_campaign: evidence gathering and determinism."""

import pytest

from repro.testkit import (
    CampaignConfig,
    canonical_report_json,
    default_registry,
    grid_configs,
    run_campaign,
    run_config,
)
from repro.testkit.report import CampaignReport

BASE = dict(n=3, t=1, d=2, ell=16, kappa=8, num_checks=2)


def _config(**kw):
    merged = {"name": "t", **BASE, **kw}
    return CampaignConfig(**merged)


class TestRunConfig:
    def test_honest_config_collects_full_evidence(self):
        result = run_config(_config(trials=3))
        ev = result.evidence
        assert len(ev.trials) == 3
        assert ev.corrupted == ()
        # Trial 0 is traced and diffed against the static schedule.
        assert ev.schedule_ok is True
        # Trial 0 runs the permuted-twin anonymity probe.
        assert ev.trials[0].anonymity_ok is True
        assert ev.trials[1].anonymity_ok is None
        # trials + one twin execution
        assert result.runs == 4
        assert result.ok, [o.to_dict() for o in result.violations]

    def test_honest_trials_deliver_and_agree(self):
        result = run_config(_config(trials=3))
        for t in result.evidence.trials:
            assert t.agreement
            assert t.qualified == (0, 1, 2)
            assert t.surviving == ()

    def test_jamming_config_tracks_survivors(self):
        result = run_config(
            _config(strategy="jamming", corrupt_count=1, trials=8)
        )
        assert result.evidence.corrupted == (2,)
        for t in result.evidence.trials:
            assert t.surviving in ((), (2,))
        assert result.ok, [o.to_dict() for o in result.violations]

    def test_crash_share_is_masked_by_ideal_vss_redundancy(self):
        """IdealVSS deals and opens through the functionality, so a
        round-0 crash retracts neither the dealing nor the openings:
        the crasher stays qualified, even passes cut-and-choose, and
        the protocol completes on honest redundancy alone.  What the
        fault exercises is robustness — every invariant must still
        hold with a party silent from round 0 on."""
        result = run_config(
            _config(fault="crash-share", corrupt_count=1, trials=2)
        )
        for t in result.evidence.trials:
            assert t.qualified == (0, 1, 2)
            assert t.surviving == (2,)
            assert t.honest_delivered
        assert result.ok, [o.to_dict() for o in result.violations]

    def test_deterministic_across_runs(self):
        config = _config(strategy="jamming", corrupt_count=1, trials=5)
        a = run_config(config).to_dict(include_trials=True)
        b = run_config(config).to_dict(include_trials=True)
        a.pop("duration_ms"), b.pop("duration_ms")
        assert a == b

    def test_campaign_seed_changes_trials(self):
        config = _config(strategy="jamming", corrupt_count=1, trials=6)
        a = run_config(config, campaign_seed=0)
        b = run_config(config, campaign_seed=1)
        assert [t.seed for t in a.evidence.trials] != [
            t.seed for t in b.evidence.trials
        ]

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            run_config(_config(strategy="bogus", corrupt_count=1))


class TestRunCampaign:
    def test_budget_skips_deterministically(self):
        configs = [_config(name=f"c{i}", trials=2 + i) for i in range(3)]
        results, skipped = run_campaign(configs, budget=1)
        assert len(results) == 1
        assert [c.name for c in skipped] == ["c1", "c2"]

    def test_no_budget_runs_everything(self):
        configs = [_config(name=f"c{i}", trials=1) for i in range(3)]
        results, skipped = run_campaign(configs)
        assert len(results) == 3 and not skipped

    def test_mini_grid_campaign_is_byte_deterministic(self):
        """Same grid + seed => byte-identical canonical reports."""
        registry = default_registry()

        def campaign():
            results, skipped = run_campaign(
                grid_configs("mini"), campaign_seed=7, registry=registry
            )
            report = CampaignReport(
                grid="mini", campaign_seed=7, results=results,
                skipped=skipped,
            )
            assert report.ok, report.render_text()
            return canonical_report_json(report)

        assert campaign() == campaign()


@pytest.mark.campaign
class TestSmokeCampaign:
    """Tier 3: the full smoke grid (~15 s); opt in with --run-campaign."""

    def test_smoke_grid_holds_every_invariant(self):
        results, skipped = run_campaign(grid_configs("smoke"))
        assert not skipped
        bad = [r for r in results if not r.ok]
        assert not bad, [
            (r.config.name, [o.to_dict() for o in r.violations])
            for r in bad
        ]

    def test_smoke_grid_reproduces_claim1(self):
        """The survival rate matches 2^-num_checks on every improper
        high-trial cell — the paper's Claim 1, measured."""
        results, _ = run_campaign(grid_configs("smoke"))
        measured = [
            o
            for r in results
            for o in r.outcomes
            if o.invariant == "claim1-survival" and o.applicable
            and o.stats["trials"] >= 64
        ]
        assert len(measured) >= 6
        for outcome in measured:
            assert outcome.passed
            # Sanity: the empirical rate is in the right ballpark, not
            # merely "not astronomically wrong".
            assert (
                abs(outcome.stats["observed_rate"]
                    - outcome.stats["expected_rate"]) < 0.2
            )
