"""Suite-wide pytest configuration: the opt-in ``campaign`` tier.

Test tiers (see docs/TESTING.md):

- **tier 1** — the default ``pytest`` run: every unmarked test.
- **tier 2** — ``slow``-marked smoke tests; included by default, can be
  deselected with ``-m "not slow"``.
- **tier 3** — ``campaign``-marked conformance campaigns (minutes of
  protocol executions); *skipped by default*, opted in with
  ``pytest --run-campaign`` (the CI nightly job does this).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-campaign",
        action="store_true",
        default=False,
        help="run campaign-marked conformance tests (tier 3)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-campaign"):
        return
    skip = pytest.mark.skip(
        reason="conformance campaign: opt in with --run-campaign"
    )
    for item in items:
        if "campaign" in item.keywords:
            item.add_marker(skip)
