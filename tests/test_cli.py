"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.__main__ import main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_no_subcommand_is_usage_error(capsys):
    assert main([]) == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "subcommand is required" in err


def test_unknown_subcommand_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_rounds_subcommand_prints_table(capsys):
    assert main(["rounds"]) == 0
    out = capsys.readouterr().out
    assert "protocol" in out and "GGOR14 (this paper)" in out


def test_params_subcommand(capsys):
    assert main(["params", "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "paper-exact" in out and "scaled" in out


def test_trace_run_prints_matching_report(capsys):
    assert main(["trace-run", "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "matches the static prediction exactly" in out
    assert "step 1: VSS-Share" in out


def test_trace_run_exports_valid_jsonl(tmp_path, capsys):
    from repro.obs import validate_file

    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--jam", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert validate_file(trace) == []


def test_trace_run_json_output(capsys):
    import json

    assert main(["trace-run", "-n", "5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["matches_prediction"] is True


def test_report_subcommand_round_trips(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--validate"]) == 0
    assert "schema ok" in capsys.readouterr().out
    assert main(["report", str(trace)]) == 0
    assert "matches the static prediction" in capsys.readouterr().out


def test_report_rejects_malformed_trace(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"seq": 0, "kind": "nope"}\n', encoding="utf-8")
    assert main(["report", str(bogus)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_lint_subcommand_forwards_arguments(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n", encoding="utf-8")
    assert main(["lint", str(clean), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
