"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.__main__ import main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_no_subcommand_is_usage_error(capsys):
    assert main([]) == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "subcommand is required" in err


def test_unknown_subcommand_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_rounds_subcommand_prints_table(capsys):
    assert main(["rounds"]) == 0
    out = capsys.readouterr().out
    assert "protocol" in out and "GGOR14 (this paper)" in out


def test_params_subcommand(capsys):
    assert main(["params", "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "paper-exact" in out and "scaled" in out


def test_lint_subcommand_forwards_arguments(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n", encoding="utf-8")
    assert main(["lint", str(clean), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
