"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro import __version__
from repro.__main__ import main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_no_subcommand_is_usage_error(capsys):
    assert main([]) == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "subcommand is required" in err


def test_unknown_subcommand_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_rounds_subcommand_prints_table(capsys):
    assert main(["rounds"]) == 0
    out = capsys.readouterr().out
    assert "protocol" in out and "GGOR14 (this paper)" in out


def test_params_subcommand(capsys):
    assert main(["params", "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "paper-exact" in out and "scaled" in out


def test_trace_run_prints_matching_report(capsys):
    assert main(["trace-run", "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert "matches the static prediction exactly" in out
    assert "step 1: VSS-Share" in out


def test_trace_run_exports_valid_jsonl(tmp_path, capsys):
    from repro.obs import validate_file

    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--jam", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert validate_file(trace) == []


def test_trace_run_json_output(capsys):
    import json

    assert main(["trace-run", "-n", "5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["matches_prediction"] is True


def test_report_subcommand_round_trips(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--validate"]) == 0
    assert "schema ok" in capsys.readouterr().out
    assert main(["report", str(trace)]) == 0
    assert "matches the static prediction" in capsys.readouterr().out


def test_report_rejects_malformed_trace(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"seq": 0, "kind": "nope"}\n', encoding="utf-8")
    assert main(["report", str(bogus)]) == 1
    assert "schema violation" in capsys.readouterr().err


def test_lint_subcommand_forwards_arguments(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n", encoding="utf-8")
    assert main(["lint", str(clean), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_profile_run_exports_current_trace_and_flamegraph(tmp_path, capsys):
    from repro.obs import SCHEMA_VERSION, read_jsonl, validate_file

    trace = tmp_path / "trace.jsonl"
    folded = tmp_path / "profile.folded"
    assert main([
        "profile-run", "-n", "5",
        "--out", str(trace), "--flamegraph", str(folded),
    ]) == 0
    capsys.readouterr()
    assert validate_file(trace) == []
    events = read_jsonl(trace)
    assert events[0].attrs["schema_version"] == SCHEMA_VERSION
    assert any(ev.kind == "prof" for ev in events)
    lines = folded.read_text(encoding="utf-8").splitlines()
    assert lines and all(" " in line for line in lines)
    assert any(line.startswith("fields;mul;") for line in lines)


def test_flamegraph_subcommand_matches_profile_run_output(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    folded = tmp_path / "direct.folded"
    assert main([
        "profile-run", "-n", "5",
        "--out", str(trace), "--flamegraph", str(folded),
    ]) == 0
    capsys.readouterr()
    # to stdout
    assert main(["flamegraph", str(trace)]) == 0
    stdout_lines = capsys.readouterr().out.splitlines()
    assert stdout_lines == folded.read_text(encoding="utf-8").splitlines()
    # to a file
    out = tmp_path / "from-trace.folded"
    assert main(["flamegraph", str(trace), "--out", str(out)]) == 0
    capsys.readouterr()
    assert out.read_bytes() == folded.read_bytes()


def test_flamegraph_on_profileless_trace_fails(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["flamegraph", str(trace)]) == 1
    assert "no prof events" in capsys.readouterr().err


def test_flamegraph_on_unreadable_trace_is_structural_error(tmp_path, capsys):
    assert main(["flamegraph", str(tmp_path / "missing.jsonl")]) == 2
    assert capsys.readouterr().err


def _bench_payload(ms: float) -> str:
    import json

    return json.dumps({
        "version": 1,
        "experiment": "emu_demo",
        "title": "demo",
        "headers": ["batch", "batched ms"],
        "rows": [[256, ms]],
        "notes": "",
    })


def test_bench_check_passes_identical_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline"
    baseline.mkdir()
    (baseline / "BENCH_emu_demo.json").write_text(_bench_payload(2.0))
    current = tmp_path / "BENCH_emu_demo.json"
    current.write_text(_bench_payload(2.0))
    assert main([
        "bench-check", "--baseline", str(baseline), str(current),
    ]) == 0
    captured = capsys.readouterr()
    assert "within thresholds" in captured.err
    assert "emu_demo" in captured.out


def test_bench_check_detects_injected_slowdown(tmp_path, capsys):
    baseline = tmp_path / "baseline"
    baseline.mkdir()
    (baseline / "BENCH_emu_demo.json").write_text(_bench_payload(2.0))
    current = tmp_path / "BENCH_emu_demo.json"
    current.write_text(_bench_payload(2.0 * 1.25))  # +25% > 20% threshold
    assert main([
        "bench-check", "--baseline", str(baseline), str(current),
    ]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION emu_demo/256/batched ms" in captured.out
    assert "regressed" in captured.err
    # ...unless the threshold is loosened or warn-only is on.
    assert main([
        "bench-check", "--baseline", str(baseline),
        "--threshold", "0.5", str(current),
    ]) == 0
    capsys.readouterr()
    assert main([
        "bench-check", "--baseline", str(baseline), "--warn-only",
        str(current),
    ]) == 0
    assert "warn-only" in capsys.readouterr().err


def test_bench_check_structural_error_exits_2(tmp_path, capsys):
    baseline = tmp_path / "baseline"
    baseline.mkdir()
    (baseline / "BENCH_emu_demo.json").write_text('{"experiment": "other"}')
    current = tmp_path / "BENCH_emu_demo.json"
    current.write_text(_bench_payload(2.0))
    assert main([
        "bench-check", "--baseline", str(baseline), str(current),
    ]) == 2
    assert capsys.readouterr().err


def test_bench_check_missing_baseline_skips(tmp_path, capsys):
    current = tmp_path / "BENCH_emu_demo.json"
    current.write_text(_bench_payload(2.0))
    assert main([
        "bench-check", "--baseline", str(tmp_path / "nowhere"), str(current),
    ]) == 0
    captured = capsys.readouterr()
    assert "skipping" in captured.err
    assert "nothing compared" in captured.err


def test_bench_check_committed_baselines_self_compare(capsys, monkeypatch):
    import os

    monkeypatch.chdir(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    # The repository root doubles as both baseline dir and current run.
    assert main(["bench-check", "--baseline", "."]) == 0
    assert "within thresholds" in capsys.readouterr().err


_TINY_CONFIG = (
    '{"name": "cli-tiny", "n": 3, "t": 1, "d": 2, "ell": 16, "kappa": 8,'
    ' "num_checks": 1, "trials": 1}'
)


def test_conformance_single_config_passes(capsys):
    assert main(["conformance", "--config", _TINY_CONFIG]) == 0
    captured = capsys.readouterr()
    assert "cli-tiny" in captured.out
    assert "all invariants hold" in captured.out


def test_conformance_bad_config_is_usage_error(capsys):
    assert main(["conformance", "--config", '{"n": 3}']) == 2
    assert "bad --config" in capsys.readouterr().err
    assert main(["conformance", "--config", "not json"]) == 2
    assert "bad --config" in capsys.readouterr().err


def test_conformance_selftest_name_collision_is_usage_error(capsys):
    assert main([
        "conformance", "--config", _TINY_CONFIG,
        "--selftest-break", "agreement",
    ]) == 2
    assert "collides" in capsys.readouterr().err


def test_conformance_selftest_break_fails_shrinks_and_reproduces(capsys):
    import shlex

    assert main([
        "conformance", "--config", _TINY_CONFIG, "--selftest-break", "broken",
    ]) == 1
    out = capsys.readouterr().out
    assert "broken" in out and "repro:" in out
    # The embedded repro command must itself reproduce the violation.
    repro_line = next(
        line for line in out.splitlines() if "repro:" in line
    )
    argv = shlex.split(repro_line.split("repro:", 1)[1])
    assert argv[:3] == ["python", "-m", "repro"]
    capsys.readouterr()
    assert main(argv[3:]) == 1
    assert "broken" in capsys.readouterr().out


def test_conformance_report_and_json_are_canonical(tmp_path, capsys):
    import json

    report_path = tmp_path / "report.json"
    assert main([
        "conformance", "--config", _TINY_CONFIG,
        "--report", str(report_path), "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["ok"] is True
    assert payload["grid"] == "custom"
    on_disk = json.loads(report_path.read_text(encoding="utf-8"))
    # The canonical stdout JSON is the on-disk report minus volatile keys.
    assert "generated_at" in on_disk and "generated_at" not in payload


def test_conformance_budget_skips_configs(capsys):
    assert main([
        "conformance", "--grid", "mini", "--budget", "1", "--json",
    ]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["skipped"]


def test_conformance_appends_telemetry_store(tmp_path, capsys):
    import json

    store = tmp_path / "telemetry.jsonl"
    assert main([
        "conformance", "--config", _TINY_CONFIG,
        "--telemetry", str(store),
    ]) == 0
    capsys.readouterr()
    lines = store.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1  # one trial in _TINY_CONFIG
    record = json.loads(lines[0])
    assert record["config"] == "cli-tiny"
    assert record["rounds"] > 0


def test_report_comm_prints_communication_report(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--comm"]) == 0
    out = capsys.readouterr().out
    assert "matches the static prediction" in out
    assert "communication report" in out
    assert "predicted (E2)" in out


def test_report_comm_json_emits_both_reports(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--comm", "--json"]) == 0
    decoder = json.JSONDecoder()
    raw = capsys.readouterr().out.strip()
    run_report, end = decoder.raw_decode(raw)
    comm_report, _ = decoder.raw_decode(raw[end:].lstrip())
    assert run_report["totals"]["matches_prediction"] is True
    assert comm_report["totals"]["matches_prediction"] is True


def test_obs_check_clean_trace_exits_zero(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["obs-check", str(trace)]) == 0
    assert "is clean" in capsys.readouterr().err


def test_obs_check_flags_injected_stall(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    lines = trace.read_text(encoding="utf-8").splitlines()
    # Truncate the stream: drop run_end (wedged-run injection).
    assert json.loads(lines[-1])["kind"] == "run_end"
    stalled = tmp_path / "stalled.jsonl"
    stalled.write_text("\n".join(lines[:-1]) + "\n", encoding="utf-8")
    assert main(["obs-check", str(stalled)]) == 1
    captured = capsys.readouterr()
    assert "stalled-round" in captured.out
    assert "anomaly" in captured.err


def test_obs_check_flags_injected_hotspot(tmp_path, capsys):
    import json

    from repro.obs import Tracer, write_jsonl
    from repro.obs.anomaly import HOTSPOT_MIN_ELEMENTS

    tracer = Tracer()
    volume = HOTSPOT_MIN_ELEMENTS * 4
    for rnd in range(3):
        tracer.record_message(rnd, 0, 1, volume, rnd + 1)
        for pid in (1, 2, 3, 4):
            tracer.record_message(rnd, pid, 0, 1, rnd + 1)
        tracer.record_round(rnd, messages=5, elements=volume + 4)
    trace = tmp_path / "hotspot.jsonl"
    write_jsonl(tracer.events, trace)
    assert main(["obs-check", str(trace), "--json"]) == 1
    captured = capsys.readouterr()
    findings = json.loads(captured.out)
    assert any(f["kind"] == "comm-hotspot" for f in findings)


def test_obs_check_unreadable_trace_is_structural_error(tmp_path, capsys):
    assert main(["obs-check", str(tmp_path / "missing.jsonl")]) == 2
    capsys.readouterr()
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"seq": 0, "kind": "nope"}\n', encoding="utf-8")
    assert main(["obs-check", str(bogus)]) == 2
    assert "schema violation" in capsys.readouterr().err


def test_dashboard_renders_from_all_inputs(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    store = tmp_path / "telemetry.jsonl"
    report = tmp_path / "campaign.json"
    assert main([
        "conformance", "--config", _TINY_CONFIG,
        "--report", str(report), "--telemetry", str(store),
    ]) == 0
    capsys.readouterr()
    out = tmp_path / "dash.html"
    assert main([
        "dashboard", "--campaign", str(report), "--telemetry", str(store),
        "--trace", str(trace), "--out", str(out),
    ]) == 0
    page = out.read_text(encoding="utf-8")
    assert page.startswith("<!DOCTYPE html>")
    assert "Communication heatmap" in page
    assert "cli-tiny" in page
    assert "<script" not in page  # self-contained, no external resources


def test_dashboard_bad_campaign_is_structural_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main([
        "dashboard", "--campaign", str(bad),
        "--out", str(tmp_path / "d.html"),
    ]) == 2
    assert capsys.readouterr().err


# -- timing report, timeline export, timing-aware obs-check ------------------

def _jittered_trace(tmp_path, capsys) -> str:
    trace = tmp_path / "jittered.jsonl"
    assert main([
        "trace-run", "-n", "5", "--latency-ms", "3", "--jitter-ms", "2",
        "--out", str(trace),
    ]) == 0
    capsys.readouterr()
    return str(trace)


def test_trace_run_latency_flags_need_async_transport(capsys):
    assert main([
        "trace-run", "-n", "5", "--latency-ms", "2",
        "--transport", "lockstep",
    ]) == 2
    assert "need the async transport" in capsys.readouterr().err


def test_report_timing_on_jittered_trace(tmp_path, capsys):
    trace = _jittered_trace(tmp_path, capsys)
    assert main(["report", trace, "--timing"]) == 0
    out = capsys.readouterr().out
    assert "observed makespan" in out
    assert "predicted makespan" in out
    assert "critical path" in out


def test_report_timing_json_payload(tmp_path, capsys):
    import json

    trace = _jittered_trace(tmp_path, capsys)
    assert main(["report", trace, "--timing", "--json"]) == 0
    # Like --comm --json, the output is a concatenation of JSON
    # documents (run report, then the timing report): decode them all
    # and take the last one.
    out = capsys.readouterr().out
    decoder = json.JSONDecoder()
    docs, pos = [], 0
    while pos < len(out.rstrip()):
        payload, end = decoder.raw_decode(out, pos)
        docs.append(payload)
        pos = end + 1
    payload = docs[-1]
    assert payload["has_timing"] is True
    assert payload["makespan_ms"] > 0.0
    assert payload["makespan_ok"] is True
    assert payload["critical_path"]


def test_report_timing_on_lockstep_trace_is_all_zero(tmp_path, capsys):
    trace = tmp_path / "lockstep.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--timing"]) == 0
    assert "0.000 ms" in capsys.readouterr().out


def test_timeline_exports_chrome_trace(tmp_path, capsys):
    import json

    trace = _jittered_trace(tmp_path, capsys)
    out = tmp_path / "timeline.json"
    assert main(["timeline", trace, "--out", str(out)]) == 0
    assert "ui.perfetto.dev" in capsys.readouterr().err
    with open(out, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert {ev["ph"] for ev in payload["traceEvents"]} >= {"M", "X", "s", "f"}


def test_timeline_rejects_pre_v4_trace(tmp_path, capsys):
    from repro.obs import read_jsonl, without_timing_fields, write_jsonl

    trace = tmp_path / "trace.jsonl"
    assert main(["trace-run", "-n", "5", "--out", str(trace)]) == 0
    capsys.readouterr()
    stripped = tmp_path / "v3.jsonl"
    write_jsonl(without_timing_fields(read_jsonl(trace)), stripped)
    assert main(["timeline", str(stripped)]) == 1
    assert "no virtual-time stamps" in capsys.readouterr().err


def test_obs_check_timing_requires_v4(tmp_path, capsys):
    from repro.obs import read_jsonl, without_timing_fields, write_jsonl

    trace = _jittered_trace(tmp_path, capsys)
    assert main(["obs-check", trace, "--timing"]) == 0
    capsys.readouterr()
    stripped = tmp_path / "v3.jsonl"
    write_jsonl(without_timing_fields(read_jsonl(trace)), stripped)
    assert main(["obs-check", str(stripped)]) == 0  # vacuously clean...
    capsys.readouterr()
    assert main(["obs-check", str(stripped), "--timing"]) == 1  # ...not here
    assert "requires a schema-v4 trace" in capsys.readouterr().err
