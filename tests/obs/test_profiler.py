"""The op profiler: counters, phase attribution, exports, schema v2."""

from __future__ import annotations

import pytest

from repro.core import run_anonchan, scaled_parameters
from repro.fields import gf2k
from repro.obs import (
    NULL_PROFILER,
    SCHEMA_VERSION,
    OpProfiler,
    Tracer,
    flamegraph_lines,
    get_profiler,
    profiled,
    records_from_events,
    set_profiler,
    validate_events,
    write_flamegraph,
)
from repro.obs.profiler import UNATTRIBUTED, attributed_fraction_of_records
from repro.vss import GGOR13_COST, IdealVSS


# -- counting and phase attribution ---------------------------------------

def test_count_accumulates_per_component_op():
    prof = OpProfiler()
    prof.count("fields", "mul")
    prof.count("fields", "mul", 4)
    prof.count("fields", "add", 2)
    assert prof.total("fields", "mul") == 5
    assert prof.total("fields", "add") == 2
    assert prof.total("fields") == 7
    assert prof.total() == 7
    assert prof.total("shamir") == 0


def test_negative_count_is_rejected():
    prof = OpProfiler()
    with pytest.raises(ValueError, match="fields/mul"):
        prof.count("fields", "mul", -1)
    assert prof.total() == 0  # rejected increment left no trace


def test_counts_attributed_to_innermost_open_span():
    tracer = Tracer()
    prof = OpProfiler(tracer)
    prof.count("fields", "mul")  # before any span: unattributed
    with tracer.span("outer"):
        prof.count("fields", "mul", 2)
        with tracer.span("inner"):
            prof.count("fields", "mul", 3)
    by_phase = {
        (r["phase"], r["count"])
        for r in prof.records()
        if r["op"] == "mul"
    }
    assert by_phase == {(None, 1), ("outer", 2), ("inner", 3)}
    assert prof.total("fields", "mul") == 6
    assert prof.attributed_fraction("fields", "mul") == pytest.approx(5 / 6)


def test_attributed_fraction_of_empty_selection_is_one():
    assert OpProfiler().attributed_fraction() == 1.0
    assert OpProfiler().attributed_fraction("fields", "mul") == 1.0


def test_observe_buckets_values_into_powers_of_two():
    prof = OpProfiler()
    for value in (0, 1, 2, 3, 4, 5, 1000):
        prof.observe("vec", "batch", value)
    (record,) = prof.records()
    # observe also advances the plain counter, one per observation
    assert record["count"] == 7
    assert record["buckets"] == {
        "0": 1,    # 0
        "1": 1,    # 1
        "2": 1,    # 2
        "4": 2,    # 3, 4
        "8": 1,    # 5
        "1024": 1, # 1000
    }


# -- records and flamegraph export ----------------------------------------

def test_records_are_sorted_and_json_safe():
    import json

    tracer = Tracer()
    prof = OpProfiler(tracer)
    with tracer.span("z-phase"):
        prof.count("vss", "deal_batched")
    prof.count("fields", "mul", 10)
    records = prof.records()
    keys = [(r["component"], r["op"]) for r in records]
    assert keys == sorted(keys)
    json.dumps(records)  # JSON-safe by construction


def test_flamegraph_lines_format_and_unattributed_frame(tmp_path):
    tracer = Tracer()
    prof = OpProfiler(tracer)
    prof.count("fields", "mul", 7)
    with tracer.span("step 2: challenge"):
        prof.count("shamir", "batch_eval", 3)
    lines = prof.flamegraph_lines()
    assert f"fields;mul;{UNATTRIBUTED} 7" in lines
    assert "shamir;batch_eval;step 2: challenge 3" in lines
    # every line is exactly "frame;frame;frame <count>"
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert len(stack.split(";")) == 3
        assert int(count) >= 0

    out = tmp_path / "profile.folded"
    assert write_flamegraph(prof.records(), out) == len(lines)
    assert out.read_text(encoding="utf-8").splitlines() == lines
    assert flamegraph_lines(prof.records()) == lines


# -- the active-profiler registry and field instrumentation ---------------

def test_get_profiler_defaults_to_null_profiler():
    assert get_profiler() is NULL_PROFILER
    assert not NULL_PROFILER.enabled
    # the null hooks are safe to call unconditionally
    NULL_PROFILER.count("fields", "mul", 100)
    NULL_PROFILER.observe("vec", "batch", 5)


def test_set_profiler_is_context_local():
    """The active-profiler slot is a ContextVar (lint RL301): installing
    a profiler in a copied context never leaks into the caller's, so
    concurrent party tasks each see their own."""
    import contextvars

    prof = OpProfiler()
    ctx = contextvars.copy_context()
    assert ctx.run(set_profiler, prof) is NULL_PROFILER
    assert ctx.run(get_profiler) is prof
    assert get_profiler() is NULL_PROFILER


def test_profiled_installs_and_restores_global_and_field_wrappers():
    field = gf2k(8)
    prof = OpProfiler()
    assert "mul" not in field.__dict__
    with profiled(prof, field):
        assert get_profiler() is prof
        assert "mul" in field.__dict__  # instance-attr wrapper installed
        field.mul(3, 5)
        field.add(1, 2)
    assert get_profiler() is NULL_PROFILER
    assert "mul" not in field.__dict__  # wrappers removed on exit
    assert prof.total("fields", "mul") == 1
    assert prof.total("fields", "add") == 1


def test_profiled_restores_on_error():
    field = gf2k(8)
    prof = OpProfiler()
    with pytest.raises(RuntimeError):
        with profiled(prof, field):
            raise RuntimeError("boom")
    assert get_profiler() is NULL_PROFILER
    assert "mul" not in field.__dict__


def test_instrument_refuses_to_stack():
    field = gf2k(8)
    prof = OpProfiler()
    undo1 = field.instrument(prof)
    undo2 = field.instrument(prof)  # second install is a no-op
    field.mul(2, 3)
    assert prof.total("fields", "mul") == 1  # counted once, not twice
    undo2()
    undo1()
    assert "mul" not in field.__dict__


def test_instrumented_ops_still_compute_correctly():
    field = gf2k(8)
    expected = field.mul(7, 9)
    prof = OpProfiler()
    with profiled(prof, field):
        assert field.mul(7, 9) == expected
        assert field.inv(field.inv(5)) == 5


def test_gf2k_profile_ops_exclude_neg():
    # In characteristic 2, neg is the identity — not a real op.
    assert "neg" not in gf2k(8)._PROFILE_OPS
    assert "mul" in gf2k(8)._PROFILE_OPS


def test_set_profiler_returns_previous():
    prof = OpProfiler()
    previous = set_profiler(prof)
    try:
        assert previous is NULL_PROFILER
        assert get_profiler() is prof
    finally:
        set_profiler(None)
    assert get_profiler() is NULL_PROFILER


# -- summary ---------------------------------------------------------------

def test_summary_folds_phases_into_per_op_totals():
    tracer = Tracer()
    prof = OpProfiler(tracer)
    prof.count("fields", "mul", 1)
    with tracer.span("alpha"):
        prof.count("fields", "mul", 3)
    summary = prof.summary()
    assert summary["totals"] == {"fields/mul": 4}
    assert summary["total_ops"] == 4
    assert summary["attributed_fraction"] == pytest.approx(0.75)


# -- trace integration: schema v2 -----------------------------------------

def _profiled_run(n: int = 5, seed: int = 3):
    params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    profiler = OpProfiler(tracer)
    result = run_anonchan(
        params, vss, messages, seed=seed, tracer=tracer, profiler=profiler
    )
    return tracer, profiler, result


def test_profiled_run_emits_valid_current_schema_trace():
    tracer, profiler, _ = _profiled_run()
    assert validate_events(tracer.events) == []
    assert tracer.events[0].attrs["schema_version"] == SCHEMA_VERSION
    assert SCHEMA_VERSION >= 2  # prof events need at least v2
    prof_events = [ev for ev in tracer.events if ev.kind == "prof"]
    assert prof_events, "profiled run must embed prof events"
    # prof events sit before the run_end terminator
    assert tracer.events[-1].kind == "run_end"
    assert all(ev.seq < tracer.events[-1].seq for ev in prof_events)


def test_records_round_trip_through_trace_events():
    tracer, profiler, _ = _profiled_run()
    assert records_from_events(tracer.events) == profiler.records()
    assert attributed_fraction_of_records(
        records_from_events(tracer.events), "fields", "mul"
    ) == pytest.approx(profiler.attributed_fraction("fields", "mul"))


def test_field_muls_overwhelmingly_attributed_to_named_phases():
    """The issue's acceptance bar: >= 95% of fields/mul land in a phase."""
    _, profiler, _ = _profiled_run()
    assert profiler.total("fields", "mul") > 0
    assert profiler.attributed_fraction("fields", "mul") >= 0.95
    phases = {
        r["phase"]
        for r in profiler.records()
        if r["component"] == "fields" and r["phase"] is not None
    }
    assert any(p.startswith("step 1") for p in phases)


def test_profiler_is_deterministic_across_runs():
    _, prof_a, result_a = _profiled_run(seed=5)
    _, prof_b, result_b = _profiled_run(seed=5)
    assert prof_a.records() == prof_b.records()
    assert result_a.metrics == result_b.metrics


def test_v1_traces_without_prof_events_still_validate():
    tracer = Tracer()
    tracer.run_start(schema_version=1, n=5)
    with tracer.span("alpha"):
        tracer.record_round(0, messages=1, elements=2)
    tracer.run_end(rounds=1)
    assert validate_events(tracer.events) == []


def test_unknown_schema_version_is_a_violation():
    tracer = Tracer()
    tracer.run_start(schema_version=99)
    tracer.run_end()
    errors = validate_events(tracer.events)
    assert any("unsupported schema_version 99" in err for err in errors)


def test_prof_event_with_negative_count_is_a_violation():
    from repro.obs.events import TraceEvent

    events = [
        TraceEvent(0, "run_start", "run", None, None, 0, 1,
                   {"schema_version": 2}),
        TraceEvent(1, "prof", "fields/mul", None, None, 0, 2,
                   {"component": "fields", "op": "mul", "count": -3}),
        TraceEvent(2, "run_end", "run", None, None, 0, 3, {}),
    ]
    errors = validate_events(events)
    assert any("prof count -3 is negative" in err for err in errors)


def test_prof_event_missing_attrs_is_a_violation():
    from repro.obs.events import TraceEvent

    events = [
        TraceEvent(0, "prof", "fields/mul", None, None, 0, 1,
                   {"component": "fields"}),
    ]
    errors = validate_events(events)
    assert any("prof attr 'op'" in err for err in errors)
    assert any("prof attr 'count'" in err for err in errors)
