"""Trace schema v3 backward compatibility.

v1 = the original span/round/note stream, v2 adds ``prof`` events,
v3 adds per-message ``msg`` events.  Old streams must keep validating
and aggregating identically; ``msg`` events must be *rejected* in
streams that declare an older schema version.
"""

from __future__ import annotations

from repro.obs import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    RunMetrics,
    TraceEvent,
    read_jsonl,
    validate_events,
    write_jsonl,
)


def _ev(seq, kind, name, *, rnd=None, phase=None, depth=0, **attrs):
    return TraceEvent(
        seq=seq, kind=kind, name=name, round_index=rnd, phase=phase,
        depth=depth, t_ns=seq * 1000, attrs=attrs,
    )


def _legacy_v1_stream() -> list[TraceEvent]:
    """A hand-built trace exactly as a v1 tracer would have written it."""
    return [
        _ev(0, "run_start", "run", schema_version=1, n=3, t=1),
        _ev(1, "span_start", "step 1: VSS-Share", phase="step 1: VSS-Share"),
        _ev(2, "round", "round", rnd=0, phase="step 1: VSS-Share",
            broadcasters=[0], messages=2, elements=10),
        _ev(3, "note", "vss-qualified", rnd=1, phase="step 1: VSS-Share",
            parties=[0, 1, 2]),
        _ev(4, "span_end", "step 1: VSS-Share", rnd=1, elapsed_ns=100),
        _ev(5, "run_end", "run", rounds=1),
    ]


def _v2_stream() -> list[TraceEvent]:
    events = _legacy_v1_stream()
    events[0] = _ev(0, "run_start", "run", schema_version=2, n=3, t=1)
    events.insert(
        5,
        _ev(5, "prof", "profile", component="fields", op="mul",
            phase_label="step 1", count=4),
    )
    events[6] = _ev(6, "run_end", "run", rounds=1)
    return events


def _msg_event(seq: int) -> TraceEvent:
    return _ev(seq, "msg", "msg", rnd=0, sender=0, receiver=1,
               elements=5, lamport=1)


def test_v1_fixture_still_validates():
    assert validate_events(_legacy_v1_stream()) == []


def test_v2_fixture_still_validates():
    assert validate_events(_v2_stream()) == []


def test_supported_versions_cover_all_four():
    assert SUPPORTED_SCHEMA_VERSIONS == {1, 2, 3, 4}
    assert SCHEMA_VERSION == 4


def test_msg_events_rejected_in_v1_stream():
    events = _legacy_v1_stream()
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    errors = validate_events(events)
    assert any("schema_version >= 3" in e for e in errors)


def test_msg_events_rejected_in_v2_stream():
    events = _v2_stream()
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    errors = validate_events(events)
    assert any("schema_version >= 3" in e for e in errors)


def test_msg_events_accepted_in_v3_stream():
    events = _legacy_v1_stream()
    events[0] = _ev(0, "run_start", "run", schema_version=3, n=3, t=1)
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    assert validate_events(events) == []


def test_headless_stream_with_msg_events_validates():
    """No run_start — the stream is treated as the current version."""
    assert validate_events([_msg_event(0)]) == []


def test_run_start_without_schema_version_is_v1():
    events = _legacy_v1_stream()
    attrs = {k: v for k, v in events[0].attrs.items()
             if k != "schema_version"}
    events[0] = TraceEvent(seq=0, kind="run_start", name="run",
                           round_index=None, phase=None, depth=0,
                           t_ns=0, attrs=attrs)
    assert validate_events(events) == []
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    assert any("schema_version >= 3" in e for e in validate_events(events))


def test_run_metrics_unchanged_by_msg_events():
    """``RunMetrics.from_events`` ignores unknown-to-it kinds, so the
    aggregation of a legacy trace is identical with msg events present."""
    legacy = _legacy_v1_stream()
    with_msgs = list(legacy)
    with_msgs.insert(3, _msg_event(99))
    before = RunMetrics.from_events(legacy)
    after = RunMetrics.from_events(with_msgs)
    assert before.to_dict() == after.to_dict()


def test_v1_fixture_round_trips_through_jsonl(tmp_path):
    events = _legacy_v1_stream()
    path = tmp_path / "v1.jsonl"
    write_jsonl(events, path)
    assert read_jsonl(path) == events
    assert validate_events(read_jsonl(path)) == []


def test_msg_attr_types_are_validated():
    bad_receiver = _ev(0, "msg", "msg", rnd=0, sender=0,
                       receiver="P1", elements=5, lamport=1)
    assert any("receiver" in e for e in validate_events([bad_receiver]))
    negative = _ev(0, "msg", "msg", rnd=0, sender=0, receiver=1,
                   elements=-5, lamport=1)
    assert any("elements" in e for e in validate_events([negative]))
    no_round = TraceEvent(seq=0, kind="msg", name="msg", round_index=None,
                          phase=None, depth=0, t_ns=0,
                          attrs={"sender": 0, "receiver": 1,
                                 "elements": 1, "lamport": 1})
    assert any("round" in e for e in validate_events([no_round]))


# -- schema v4: virtual-time stamps ------------------------------------------

def _v4_stream() -> list[TraceEvent]:
    """A hand-built v4 trace exercising every timing attribute."""
    return [
        _ev(0, "run_start", "run", schema_version=4, n=3, t=1),
        _ev(1, "note", "timing-model", latency={"model": "zero"},
            compute={"model": "zero"}, realtime=False),
        _ev(2, "span_start", "step 1: VSS-Share", phase="step 1: VSS-Share",
            t_virtual=0.0),
        _ev(3, "msg", "msg", rnd=0, phase="step 1: VSS-Share", sender=0,
            receiver=1, elements=5, lamport=1, t_send=0.0, t_recv=1.5),
        _ev(4, "round", "round", rnd=0, phase="step 1: VSS-Share",
            broadcasters=[0], messages=1, elements=5,
            t_start=0.0, t_end=1.5, t_wall_ms=0.2),
        _ev(5, "span_end", "step 1: VSS-Share", rnd=0, elapsed_ns=100,
            t_virtual=1.5),
        _ev(6, "run_end", "run", rounds=1, makespan_ms=1.5),
    ]


def _redeclared(events: list[TraceEvent], version: int) -> list[TraceEvent]:
    attrs = {**events[0].attrs, "schema_version": version}
    events[0] = TraceEvent(seq=0, kind="run_start", name="run",
                           round_index=None, phase=None, depth=0,
                           t_ns=0, attrs=attrs)
    return events


def test_v4_fixture_validates():
    assert validate_events(_v4_stream()) == []


def test_timing_fields_rejected_in_v3_stream():
    errors = validate_events(_redeclared(_v4_stream(), 3))
    for key in ("t_send", "t_recv", "t_start", "t_end", "t_wall_ms",
                "t_virtual", "makespan_ms"):
        assert any(
            f"{key!r} requires schema_version >= 4" in e for e in errors
        ), key
    assert any("timing-model note requires schema_version >= 4" in e
               for e in errors)


def test_timing_fields_rejected_in_v1_stream():
    """A v1 declaration rejects both the msg events and their stamps."""
    errors = validate_events(_redeclared(_v4_stream(), 1))
    assert any("schema_version >= 3" in e for e in errors)
    assert any("'t_send' requires schema_version >= 4" in e for e in errors)


def test_headless_stream_with_timing_fields_validates():
    """No run_start — the stream is treated as the current version."""
    stamped = _ev(0, "msg", "msg", rnd=0, sender=0, receiver=1,
                  elements=5, lamport=1, t_send=0.0, t_recv=2.0)
    assert validate_events([stamped]) == []


def test_non_numeric_timing_values_rejected():
    events = _v4_stream()
    events[3] = _ev(3, "msg", "msg", rnd=0, phase="step 1: VSS-Share",
                    sender=0, receiver=1, elements=5, lamport=1,
                    t_send="soon", t_recv=True)
    errors = validate_events(events)
    assert any("'t_send' is str, not a number" in e for e in errors)
    assert any("'t_recv' is bool, not a number" in e for e in errors)


def test_timestamp_free_v4_stream_is_valid():
    """Timing attrs are optional on v4 — a stamp-free trace validates."""
    events = _legacy_v1_stream()
    _redeclared(events, 4)
    assert validate_events(events) == []


def test_run_metrics_and_comm_unchanged_by_timing_fields():
    """Aggregators that predate v4 must not see the new stamps."""
    from repro.obs import CommReport, without_timing_fields

    stamped = _v4_stream()
    stripped = without_timing_fields(stamped)
    before = RunMetrics.from_events(stamped).to_dict()
    after = RunMetrics.from_events(stripped).to_dict()
    # The downgrade re-declares the version; nothing else may move.
    assert before.pop("meta")["schema_version"] == 4
    assert after.pop("meta")["schema_version"] == 3
    assert before == after
    comm_before = CommReport.from_events(stamped).to_dict()
    comm_after = CommReport.from_events(stripped).to_dict()
    assert comm_before.pop("schema_version") == 4
    assert comm_after.pop("schema_version") == 3
    assert comm_before == comm_after


def test_without_timing_fields_downgrades_to_valid_v3():
    from repro.obs import without_timing_fields

    stripped = without_timing_fields(_v4_stream())
    assert validate_events(stripped) == []
    assert stripped[0].attrs["schema_version"] == 3
    assert [ev.seq for ev in stripped] == list(range(len(stripped)))
    for ev in stripped:
        assert ev.name != "timing-model"
        assert not ev.attrs.keys() & {
            "t_send", "t_recv", "t_start", "t_end", "t_wall_ms",
            "t_virtual", "makespan_ms",
        }
