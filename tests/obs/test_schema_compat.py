"""Trace schema v3 backward compatibility.

v1 = the original span/round/note stream, v2 adds ``prof`` events,
v3 adds per-message ``msg`` events.  Old streams must keep validating
and aggregating identically; ``msg`` events must be *rejected* in
streams that declare an older schema version.
"""

from __future__ import annotations

from repro.obs import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    RunMetrics,
    TraceEvent,
    read_jsonl,
    validate_events,
    write_jsonl,
)


def _ev(seq, kind, name, *, rnd=None, phase=None, depth=0, **attrs):
    return TraceEvent(
        seq=seq, kind=kind, name=name, round_index=rnd, phase=phase,
        depth=depth, t_ns=seq * 1000, attrs=attrs,
    )


def _legacy_v1_stream() -> list[TraceEvent]:
    """A hand-built trace exactly as a v1 tracer would have written it."""
    return [
        _ev(0, "run_start", "run", schema_version=1, n=3, t=1),
        _ev(1, "span_start", "step 1: VSS-Share", phase="step 1: VSS-Share"),
        _ev(2, "round", "round", rnd=0, phase="step 1: VSS-Share",
            broadcasters=[0], messages=2, elements=10),
        _ev(3, "note", "vss-qualified", rnd=1, phase="step 1: VSS-Share",
            parties=[0, 1, 2]),
        _ev(4, "span_end", "step 1: VSS-Share", rnd=1, elapsed_ns=100),
        _ev(5, "run_end", "run", rounds=1),
    ]


def _v2_stream() -> list[TraceEvent]:
    events = _legacy_v1_stream()
    events[0] = _ev(0, "run_start", "run", schema_version=2, n=3, t=1)
    events.insert(
        5,
        _ev(5, "prof", "profile", component="fields", op="mul",
            phase_label="step 1", count=4),
    )
    events[6] = _ev(6, "run_end", "run", rounds=1)
    return events


def _msg_event(seq: int) -> TraceEvent:
    return _ev(seq, "msg", "msg", rnd=0, sender=0, receiver=1,
               elements=5, lamport=1)


def test_v1_fixture_still_validates():
    assert validate_events(_legacy_v1_stream()) == []


def test_v2_fixture_still_validates():
    assert validate_events(_v2_stream()) == []


def test_supported_versions_cover_all_three():
    assert SUPPORTED_SCHEMA_VERSIONS == {1, 2, 3}
    assert SCHEMA_VERSION == 3


def test_msg_events_rejected_in_v1_stream():
    events = _legacy_v1_stream()
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    errors = validate_events(events)
    assert any("schema_version >= 3" in e for e in errors)


def test_msg_events_rejected_in_v2_stream():
    events = _v2_stream()
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    errors = validate_events(events)
    assert any("schema_version >= 3" in e for e in errors)


def test_msg_events_accepted_in_v3_stream():
    events = _legacy_v1_stream()
    events[0] = _ev(0, "run_start", "run", schema_version=3, n=3, t=1)
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    assert validate_events(events) == []


def test_headless_stream_with_msg_events_validates():
    """No run_start — the stream is treated as the current version."""
    assert validate_events([_msg_event(0)]) == []


def test_run_start_without_schema_version_is_v1():
    events = _legacy_v1_stream()
    attrs = {k: v for k, v in events[0].attrs.items()
             if k != "schema_version"}
    events[0] = TraceEvent(seq=0, kind="run_start", name="run",
                           round_index=None, phase=None, depth=0,
                           t_ns=0, attrs=attrs)
    assert validate_events(events) == []
    events.insert(3, _msg_event(3))
    events = [
        TraceEvent(seq=i, kind=ev.kind, name=ev.name,
                   round_index=ev.round_index, phase=ev.phase,
                   depth=ev.depth, t_ns=ev.t_ns, attrs=ev.attrs)
        for i, ev in enumerate(events)
    ]
    assert any("schema_version >= 3" in e for e in validate_events(events))


def test_run_metrics_unchanged_by_msg_events():
    """``RunMetrics.from_events`` ignores unknown-to-it kinds, so the
    aggregation of a legacy trace is identical with msg events present."""
    legacy = _legacy_v1_stream()
    with_msgs = list(legacy)
    with_msgs.insert(3, _msg_event(99))
    before = RunMetrics.from_events(legacy)
    after = RunMetrics.from_events(with_msgs)
    assert before.to_dict() == after.to_dict()


def test_v1_fixture_round_trips_through_jsonl(tmp_path):
    events = _legacy_v1_stream()
    path = tmp_path / "v1.jsonl"
    write_jsonl(events, path)
    assert read_jsonl(path) == events
    assert validate_events(read_jsonl(path)) == []


def test_msg_attr_types_are_validated():
    bad_receiver = _ev(0, "msg", "msg", rnd=0, sender=0,
                       receiver="P1", elements=5, lamport=1)
    assert any("receiver" in e for e in validate_events([bad_receiver]))
    negative = _ev(0, "msg", "msg", rnd=0, sender=0, receiver=1,
                   elements=-5, lamport=1)
    assert any("elements" in e for e in validate_events([negative]))
    no_round = TraceEvent(seq=0, kind="msg", name="msg", round_index=None,
                          phase=None, depth=0, t_ns=0,
                          attrs={"sender": 0, "receiver": 1,
                                 "elements": 1, "lamport": 1})
    assert any("round" in e for e in validate_events([no_round]))
