"""Chrome-trace (Perfetto) export of v4 traces."""

from __future__ import annotations

import json

from repro.core import run_anonchan, scaled_parameters
from repro.network.runtime import InMemoryAsyncTransport, UniformLatency
from repro.obs import (
    Tracer,
    chrome_trace,
    without_timing_fields,
    write_chrome_trace,
)
from repro.vss import GGOR13_COST, IdealVSS


def _traced_run(transport=None, n: int = 5) -> Tracer:
    params = scaled_parameters(n=n)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=0, tracer=tracer,
                 transport=transport)
    return tracer


def _jittered_events():
    return _traced_run(
        transport=InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=3.0, jitter_ms=2.0), seed=0
        )
    ).events


def test_chrome_trace_shape():
    payload = chrome_trace(_jittered_events())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    by_phase = {}
    for ev in events:
        by_phase.setdefault(ev["ph"], []).append(ev)
    # Metadata: the process plus one thread per party.
    names = {ev["name"] for ev in by_phase["M"]}
    assert names == {"process_name", "thread_name"}
    threads = [ev for ev in by_phase["M"] if ev["name"] == "thread_name"]
    assert {ev["args"]["name"] for ev in threads} == {
        f"party {pid}" for pid in range(5)
    }
    # Slices: every complete event has non-negative extent in µs.
    assert by_phase["X"]
    assert all(ev["dur"] >= 0.0 and ev["ts"] >= 0.0 for ev in by_phase["X"])
    # Flows come in s/f pairs with matching ids, sender -> receiver.
    starts = {ev["id"]: ev for ev in by_phase["s"]}
    finishes = {ev["id"]: ev for ev in by_phase["f"]}
    assert set(starts) == set(finishes)
    for flow_id, start in starts.items():
        finish = finishes[flow_id]
        assert start["tid"] == start["args"]["sender"]
        assert finish["tid"] == finish["args"]["receiver"]
        assert finish["bp"] == "e"
        assert finish["ts"] >= start["ts"]  # arrival after send


def test_flow_count_matches_private_deliveries():
    events = _jittered_events()
    payload = chrome_trace(events)
    private = [
        ev for ev in events
        if ev.kind == "msg" and ev.attrs.get("receiver") is not None
    ]
    flows = [ev for ev in payload["traceEvents"] if ev["ph"] == "s"]
    assert len(flows) == len(private)


def test_lockstep_trace_exports_degenerate_timeline():
    """All-zero virtual time still yields a loadable timeline."""
    payload = chrome_trace(_traced_run().events)
    slices = [ev for ev in payload["traceEvents"] if ev["ph"] == "X"]
    assert slices
    assert all(ev["ts"] == 0.0 and ev["dur"] == 0.0 for ev in slices)


def test_stripped_trace_exports_metadata_only():
    payload = chrome_trace(without_timing_fields(_traced_run().events))
    kinds = {ev["ph"] for ev in payload["traceEvents"]}
    assert kinds == {"M"}  # nothing to place on a time axis


def test_write_chrome_trace_round_trips(tmp_path):
    events = _jittered_events()
    path = tmp_path / "timeline.json"
    count = write_chrome_trace(events, path)
    with open(path, encoding="utf-8") as fh:
        loaded = json.load(fh)
    assert count == len(loaded["traceEvents"])
    assert loaded == json.loads(json.dumps(chrome_trace(events)))
