"""Tracer unit tests: spans, event structure, secrecy enforcement."""

from __future__ import annotations

import pytest

from repro.fields import gf2k
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SecrecyViolation,
    Tracer,
)


def fixed_clock():
    """A deterministic monotonic clock for timestamp-sensitive tests."""
    state = {"t": 0}

    def clock() -> int:
        state["t"] += 1000
        return state["t"]

    return clock


def test_span_nesting_and_phase_attribution():
    tracer = Tracer(clock=fixed_clock())
    with tracer.span("outer"):
        assert tracer.current_phase == "outer"
        with tracer.span("inner"):
            assert tracer.current_phase == "inner"
            tracer.record_round(0, broadcasters=[1, 3], messages=7, elements=9)
        assert tracer.current_phase == "outer"
    assert tracer.current_phase is None

    kinds = [ev.kind for ev in tracer.events]
    assert kinds == ["span_start", "span_start", "round", "span_end", "span_end"]
    round_ev = tracer.events[2]
    assert round_ev.phase == "inner"
    assert round_ev.round_index == 0
    assert round_ev.attrs["broadcasters"] == [1, 3]
    assert round_ev.attrs["messages"] == 7
    assert round_ev.attrs["elements"] == 9
    assert [ev.depth for ev in tracer.events] == [0, 1, 2, 1, 0]


def test_seq_dense_and_round_counter_advances():
    tracer = Tracer(clock=fixed_clock())
    tracer.run_start(n=3)
    tracer.record_round(0)
    tracer.record_round(1)
    with tracer.span("late"):
        pass
    assert [ev.seq for ev in tracer.events] == list(range(len(tracer.events)))
    # Span events after two rounds carry the *next* round index.
    span_start = next(ev for ev in tracer.events if ev.kind == "span_start")
    assert span_start.round_index == 2


def test_run_start_carries_schema_version():
    tracer = Tracer(clock=fixed_clock())
    tracer.run_start(n=5)
    assert tracer.events[0].attrs["schema_version"] >= 1
    assert tracer.events[0].attrs["n"] == 5


def test_secret_values_rejected_at_emission():
    tracer = Tracer(clock=fixed_clock())
    element = gf2k(16)(3)
    with pytest.raises(SecrecyViolation):
        tracer.annotate("leak", value=element)
    with pytest.raises(SecrecyViolation):
        tracer.annotate("leak", values=[element])
    with pytest.raises(SecrecyViolation):
        tracer.annotate("leak", nested={"deep": [element]})
    # Nothing is half-emitted on rejection.
    assert tracer.events == []


def test_non_string_dict_keys_rejected():
    tracer = Tracer(clock=fixed_clock())
    with pytest.raises(SecrecyViolation):
        tracer.annotate("bad", per_party={1: 2})


def test_public_observables_accepted():
    tracer = Tracer(clock=fixed_clock())
    tracer.annotate(
        "ok",
        count=3,
        ids=[0, 1, 2],
        ratio=0.5,
        label="phase",
        flag=True,
        missing=None,
        per_party={"0": {"messages": 2}},
    )
    assert tracer.events[0].attrs["count"] == 3


def test_null_tracer_is_inert_and_reusable():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("anything", junk=1) as span:
        assert span is not None
    NULL_TRACER.annotate("x", y=2)
    NULL_TRACER.run_start()
    NULL_TRACER.run_end()
    NULL_TRACER.record_round(0, broadcasters=[1])
    # Same no-op span object every time: the fast path allocates nothing.
    assert NullTracer().span("a") is NullTracer().span("b")
