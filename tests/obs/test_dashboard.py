"""The HTML telemetry dashboard: self-contained, escaped, degradable."""

from __future__ import annotations

from repro.core import run_anonchan, scaled_parameters
from repro.obs import CommReport, Tracer, render_dashboard
from repro.vss import GGOR13_COST, IdealVSS


def _comm_dict():
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=7, tracer=tracer)
    return CommReport.from_events(tracer.events).to_dict()


def test_empty_dashboard_renders_placeholders():
    page = render_dashboard()
    assert page.startswith("<!DOCTYPE html>")
    assert "no campaign report supplied" in page
    assert "no telemetry store supplied" in page
    assert "no BENCH history supplied" in page
    assert "no trace supplied" in page


def test_dashboard_is_self_contained():
    page = render_dashboard(comm=_comm_dict())
    # No external resources of any kind: CI artifact must render offline.
    for needle in ("http://", "https://", "<script", "<link", "@import"):
        assert needle not in page
    assert "<style>" in page


def test_comm_heatmap_renders_links_and_verdict():
    page = render_dashboard(comm=_comm_dict())
    assert "Communication heatmap" in page
    assert "bcast" in page
    assert "communication within every analytic bound" in page


def test_comm_divergences_are_listed():
    comm = _comm_dict()
    comm["divergences"] = ["E2: too many broadcast rounds"]
    page = render_dashboard(comm=comm)
    assert "comm divergences" in page
    assert "E2: too many broadcast rounds" in page


def test_campaign_section_groups_pass_rates_by_axis():
    campaign = {
        "grid": "smoke",
        "campaign_seed": 0,
        "totals": {"ok": False, "configs": 2, "runs": 6},
        "configs": [
            {"config": {"name": "a", "strategy": "honest", "fault": "none",
                        "substrate": "auto"}, "ok": True, "violations": []},
            {"config": {"name": "b", "strategy": "jam", "fault": "drop",
                        "substrate": "auto"}, "ok": False,
             "violations": ["claim2-delivery"]},
        ],
    }
    page = render_dashboard(campaign=campaign)
    assert "pass rate by strategy" in page
    assert "INVARIANT VIOLATIONS" in page
    assert "claim2-delivery" in page
    assert "jam" in page


def test_telemetry_section_aggregates_per_config():
    telemetry = [
        {"config": "tiny", "rounds": 6, "broadcast_rounds": 2,
         "private_messages": 20, "field_elements_sent": 4000,
         "honest_delivered": True},
        {"config": "tiny", "rounds": 6, "broadcast_rounds": 2,
         "private_messages": 20, "field_elements_sent": 4200,
         "honest_delivered": False},
    ]
    page = render_dashboard(telemetry=telemetry)
    assert "2 trial records across 1 config(s)" in page
    assert "tiny" in page
    assert "1/2" in page  # delivered column


def test_bench_section_renders_sparklines():
    history = [
        {"stamp": "s1", "experiment": "emu_demo",
         "metrics": {"256/batched ms": 2.0}},
        {"stamp": "s2", "experiment": "emu_demo",
         "metrics": {"256/batched ms": 2.4}},
    ]
    page = render_dashboard(bench_history=history)
    assert "emu_demo (2 snapshots)" in page
    assert '<svg class="spark"' in page
    assert "polyline" in page
    assert "2.4" in page  # latest value


def test_everything_is_html_escaped():
    campaign = {
        "grid": "<script>alert(1)</script>",
        "campaign_seed": 0,
        "totals": {"ok": True, "configs": 1, "runs": 1},
        "configs": [
            {"config": {"name": "<img onerror=x>", "strategy": "h&m",
                        "fault": "none", "substrate": "auto"},
             "ok": True, "violations": []},
        ],
    }
    page = render_dashboard(campaign=campaign, title="<b>evil</b>")
    assert "<script>alert(1)</script>" not in page
    assert "&lt;script&gt;" in page
    assert "<b>evil</b>" not in page
    assert "h&amp;m" in page


def _timing_dict(jittered: bool = True):
    from repro.network.runtime import InMemoryAsyncTransport, UniformLatency
    from repro.obs import TimingReport

    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    transport = (
        InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=3.0, jitter_ms=2.0), seed=7
        )
        if jittered
        else None
    )
    run_anonchan(params, vss, messages, seed=7, tracer=tracer,
                 transport=transport)
    return TimingReport.from_events(tracer.events).to_dict()


def test_timing_panel_renders_verdict_heatmap_and_critical_path():
    page = render_dashboard(timing=_timing_dict())
    assert "Timing &amp; critical path" in page
    assert "within tolerance" in page
    assert "observed makespan" in page
    # The straggler heatmap and the hop table are both present.
    assert "Stragglers" in page or "straggler" in page
    assert "critical path" in page.lower()


def test_timing_panel_placeholder_without_v4_trace():
    page = render_dashboard()
    assert "Timing &amp; critical path" in page
    assert ("no schema-v4 trace" in page or "no trace" in page
            or "no virtual-time" in page)


def test_timing_panel_sparkline_from_telemetry_makespans():
    telemetry = [
        {"config": "c", "strategy": "honest", "fault": "none", "n": 5,
         "trial": i, "honest_delivered": True, "agreement": True,
         "rounds": 30, "makespan_ms": 20.0 + i}
        for i in range(4)
    ]
    page = render_dashboard(timing=_timing_dict(), telemetry=telemetry)
    assert "per-trial makespan" in page.lower()
