"""RunMetrics aggregation and the derived ProtocolMetrics view."""

from __future__ import annotations

from repro.core import run_anonchan, scaled_parameters
from repro.network.metrics import ProtocolMetrics
from repro.obs import RunMetrics, Tracer
from repro.vss import GGOR13_COST, IdealVSS

from .test_tracer import fixed_clock


def _traced_run(n: int = 5, seed: int = 3) -> tuple[Tracer, ProtocolMetrics]:
    params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    result = run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    return tracer, result.metrics


def test_manual_aggregation_by_phase_and_party():
    tracer = Tracer(clock=fixed_clock())
    with tracer.span("alpha"):
        tracer.record_round(
            0, broadcasters=[0], messages=2, elements=10,
            per_party={"0": {"messages": 2, "elements": 10, "broadcast": True}},
        )
        tracer.record_round(
            1, broadcasters=[], messages=4, elements=6,
            per_party={"1": {"messages": 4, "elements": 6, "broadcast": False}},
        )
    with tracer.span("beta"):
        tracer.record_round(
            2, broadcasters=[0, 1], messages=0, elements=8,
            per_party={
                "0": {"messages": 0, "elements": 4, "broadcast": True},
                "1": {"messages": 0, "elements": 4, "broadcast": True},
            },
        )
    rm = RunMetrics.from_events(tracer.events)

    alpha = rm.phase("alpha")
    assert (alpha.rounds, alpha.broadcast_rounds) == (2, 1)
    assert alpha.broadcasts_sent == 1
    assert alpha.private_messages == 6
    assert alpha.field_elements_sent == 16
    assert alpha.wall_ns > 0

    beta = rm.phase("beta")
    assert (beta.rounds, beta.broadcast_rounds) == (1, 1)
    assert beta.broadcasts_sent == 2

    parties = {p.pid: p for p in rm.parties}
    assert parties[0].broadcasts_sent == 2
    assert parties[0].private_messages == 2
    assert parties[1].broadcasts_sent == 1
    assert parties[1].field_elements_sent == 10

    flat = rm.to_protocol_metrics()
    assert flat == ProtocolMetrics(
        rounds=3,
        broadcast_rounds=2,
        broadcasts_sent=3,
        private_messages=6,
        field_elements_sent=24,
    )


def test_rounds_outside_spans_fall_into_unattributed_bucket():
    tracer = Tracer(clock=fixed_clock())
    tracer.record_round(0, messages=1)
    rm = RunMetrics.from_events(tracer.events)
    assert [pm.phase for pm in rm.phases] == ["(no span)"]


def test_derived_view_equals_simulator_metrics_exactly():
    """The flat ProtocolMetrics is a pure projection of the trace."""
    tracer, flat = _traced_run()
    derived = RunMetrics.from_events(tracer.events).to_protocol_metrics()
    assert derived == flat


def test_per_party_totals_sum_to_run_totals():
    tracer, flat = _traced_run()
    rm = RunMetrics.from_events(tracer.events)
    assert sum(p.private_messages for p in rm.parties) == flat.private_messages
    assert (
        sum(p.field_elements_sent for p in rm.parties)
        == flat.field_elements_sent
    )
    assert sum(p.broadcasts_sent for p in rm.parties) == flat.broadcasts_sent


def test_to_dict_is_json_shaped():
    import json

    tracer, _ = _traced_run()
    payload = RunMetrics.from_events(tracer.events).to_dict()
    encoded = json.dumps(payload)
    assert "step 1: VSS-Share" in encoded
    assert payload["totals"]["rounds"] == GGOR13_COST.share_rounds + 5


def test_phase_and_party_metrics_round_trip_through_dicts():
    from repro.obs import PartyMetrics, PhaseMetrics

    pm = PhaseMetrics(phase="step 2: challenge", rounds=3, broadcast_rounds=1,
                      broadcasts_sent=5, private_messages=7,
                      field_elements_sent=11, wall_ns=13)
    assert PhaseMetrics.from_dict(pm.to_dict()) == pm

    party = PartyMetrics(pid=2, broadcasts_sent=1, private_messages=4,
                         field_elements_sent=9)
    assert PartyMetrics.from_dict(party.to_dict()) == party

    # Missing optional counters default to zero.
    assert PhaseMetrics.from_dict({"phase": "x"}) == PhaseMetrics(phase="x")
    assert PartyMetrics.from_dict({"pid": 0}) == PartyMetrics(pid=0)


def test_run_metrics_round_trip_through_dicts():
    tracer, _ = _traced_run()
    rm = RunMetrics.from_events(tracer.events)
    restored = RunMetrics.from_dict(rm.to_dict())
    assert restored == rm
    # And the JSON form itself is a fixed point.
    assert restored.to_dict() == rm.to_dict()


def test_run_metrics_from_dict_recomputes_totals():
    # The derived totals block is recomputed from the phase rows, never
    # trusted: a tampered totals entry does not survive the round trip.
    tracer, _ = _traced_run()
    payload = RunMetrics.from_events(tracer.events).to_dict()
    payload["totals"]["rounds"] = 10_000
    restored = RunMetrics.from_dict(payload)
    assert restored.rounds == sum(pm["rounds"] for pm in payload["phases"])
    assert restored.to_dict()["totals"]["rounds"] != 10_000
