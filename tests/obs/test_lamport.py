"""Lamport clocks: monotonicity and happens-before, property-tested.

The simulator ticks each sending party's clock once per round (all its
messages that round share the stamp) and max-merges received stamps at
delivery, so the next send is strictly above everything the party has
seen.  These properties must hold on every traced execution, across
seeds, configs, and adversaries.
"""

from __future__ import annotations

import pytest

from repro.core import run_anonchan, scaled_parameters
from repro.core.adversaries import jamming_material
from repro.network import RoundOutput, run_protocol
from repro.network.messages import LamportClock
from repro.obs import Tracer
from repro.vss import GGOR13_COST, IdealVSS

import random


# -- the clock itself -------------------------------------------------------

def test_tick_increments_and_returns():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2
    assert clock.value == 2


def test_observe_max_merges():
    clock = LamportClock(3)
    assert clock.observe([1, 7, 2]) == 7
    assert clock.tick() == 8  # strictly above everything observed
    assert clock.observe([]) == 8  # no-op on empty


def test_observe_ignores_stale_stamps():
    clock = LamportClock(9)
    clock.observe([1, 2])
    assert clock.value == 9


# -- properties over traced executions --------------------------------------

def _msg_stream(tracer: Tracer):
    return [ev for ev in tracer.events if ev.kind == "msg"]


def _assert_lamport_properties(tracer: Tracer) -> None:
    """Monotone per sender; consistent with lockstep happens-before."""
    msgs = _msg_stream(tracer)
    assert msgs, "traced run must emit msg events"
    last: dict[int, tuple[int, int]] = {}  # sender -> (round, stamp)
    # Stamps delivered in *completed* rounds floor later sends.
    delivered: dict[int, int] = {}
    pending: dict[int, int] = {}
    broadcast_floor = 0
    pending_broadcast = 0
    current_round = None
    for ev in msgs:
        sender = ev.attrs["sender"]
        receiver = ev.attrs["receiver"]
        stamp = ev.attrs["lamport"]
        rnd = ev.round_index
        if rnd != current_round:
            for pid, pstamp in pending.items():
                delivered[pid] = max(delivered.get(pid, 0), pstamp)
            broadcast_floor = max(broadcast_floor, pending_broadcast)
            pending = {}
            pending_broadcast = 0
            current_round = rnd
        if sender in last:
            prev_round, prev_stamp = last[sender]
            if rnd == prev_round:
                # One tick per round: all of a round's sends share it.
                assert stamp == prev_stamp
            else:
                assert stamp > prev_stamp, (
                    f"party {sender} stamp not monotone: "
                    f"{stamp} after {prev_stamp}"
                )
        else:
            floor = max(delivered.get(sender, 0), broadcast_floor)
            assert stamp > floor or floor == 0 or stamp > 0
        # Happens-before: a fresh round's send clears everything the
        # sender received in earlier rounds.
        if sender not in last or last[sender][0] != rnd:
            floor = max(delivered.get(sender, 0), broadcast_floor)
            assert stamp > floor, (
                f"party {sender} sent stamp {stamp} after receiving "
                f"{floor} in an earlier round"
            )
        last[sender] = (rnd, stamp)
        if receiver is None:
            pending_broadcast = max(pending_broadcast, stamp)
        else:
            pending[receiver] = max(pending.get(receiver, 0), stamp)


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_lamport_properties_hold_across_seeds(seed):
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    _assert_lamport_properties(tracer)


@pytest.mark.parametrize("n", [4, 5, 7])
def test_lamport_properties_hold_across_configs(n):
    params = scaled_parameters(n=n, d=6, num_checks=2, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=3, tracer=tracer)
    _assert_lamport_properties(tracer)


def test_lamport_properties_hold_under_a_jammer():
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    corrupt = {4: jamming_material(params, random.Random(11))}
    tracer = Tracer()
    run_anonchan(
        params, vss, messages, seed=11, corrupt_materials=corrupt,
        tracer=tracer,
    )
    _assert_lamport_properties(tracer)


# -- toy simulator programs: exact stamp values ------------------------------

def test_toy_protocol_stamps_are_exact():
    """Two rounds of all-to-all: round-0 stamps are 1, round-1 stamps 2."""
    def prog(pid, n):
        inbox = yield RoundOutput(
            private={j: [1] for j in range(n) if j != pid}
        )
        inbox = yield RoundOutput(
            private={j: [2] for j in range(n) if j != pid}
        )
        return len(inbox.private)

    tracer = Tracer()
    run_protocol({0: prog(0, 3), 1: prog(1, 3), 2: prog(2, 3)},
                 tracer=tracer)
    msgs = _msg_stream(tracer)
    by_round: dict[int, set[int]] = {}
    for ev in msgs:
        by_round.setdefault(ev.round_index, set()).add(ev.attrs["lamport"])
    # Everyone heard everyone in round 0, so every round-1 tick lands on 2.
    assert by_round[0] == {1}
    assert by_round[1] == {2}


def test_silent_party_keeps_older_stamp():
    """A party that skips a round ticks later but still respects HB."""
    def chatty(pid):
        yield RoundOutput(private={1: [1]})
        yield RoundOutput(private={1: [1]})
        return None

    def quiet(pid):
        yield RoundOutput()  # silent round: no tick
        yield RoundOutput(private={0: [1]})
        return None

    tracer = Tracer()
    run_protocol({0: chatty(0), 1: quiet(1)}, tracer=tracer)
    msgs = _msg_stream(tracer)
    quiet_sends = [ev for ev in msgs if ev.attrs["sender"] == 1]
    assert len(quiet_sends) == 1
    # Party 1 observed party 0's round-0 stamp (1), so its first tick
    # is 2 — strictly above everything it received.
    assert quiet_sends[0].attrs["lamport"] == 2


def test_untraced_run_maintains_no_clocks():
    """The hot path without a tracer emits nothing and pays nothing."""
    def prog(pid):
        yield RoundOutput(private={1 - pid: [1]})
        return None

    result = run_protocol({0: prog(0), 1: prog(1)})
    assert result.metrics.private_messages == 2
