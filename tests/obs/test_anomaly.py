"""The anomaly watchdog: clean on honest runs, loud on injected faults."""

from __future__ import annotations

import dataclasses

from repro.core import run_anonchan, scaled_parameters
from repro.network.runtime import InMemoryAsyncTransport, UniformLatency
from repro.obs import Tracer, scan_events, without_timing_fields
from repro.obs.anomaly import (
    HOTSPOT_MIN_ELEMENTS,
    Anomaly,
    scan_events as scan,
)
from repro.vss import GGOR13_COST, IdealVSS


def _traced_run(seed: int = 7, transport=None) -> list:
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=seed, tracer=tracer,
                 transport=transport)
    return list(tracer.events)


def _jittered_run(seed: int = 7) -> list:
    return _traced_run(
        seed=seed,
        transport=InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=2.0, jitter_ms=3.0), seed=seed
        ),
    )


def _msg(tracer, round_index, sender, receiver, elements, lamport):
    tracer.record_message(round_index, sender, receiver, elements, lamport)


def test_honest_traced_run_is_clean():
    assert scan_events(_traced_run()) == []


def test_anomaly_render_and_to_dict():
    a = Anomaly(kind="comm-hotspot", message="m", round_index=3, party=1)
    assert a.to_dict() == {
        "kind": "comm-hotspot", "message": "m", "round": 3, "party": 1,
    }
    assert "[comm-hotspot] round=3 party=1: m" == a.render()


# -- stalled rounds ---------------------------------------------------------

def test_dropped_round_is_a_stalled_round():
    events = _traced_run()
    idx = [i for i, ev in enumerate(events) if ev.kind == "round"][2]
    del events[idx]
    findings = scan(events)
    assert any(f.kind == "stalled-round" and "jumps" in f.message
               for f in findings)


def test_truncated_trace_without_run_end_is_stalled():
    events = _traced_run()
    assert events[-1].kind == "run_end"
    findings = scan(events[:-1])
    assert any(f.kind == "stalled-round" and "run_end" in f.message
               for f in findings)


def test_round_overrun_past_prediction_is_stalled():
    events = _traced_run()
    last_round = max(
        ev.round_index for ev in events if ev.kind == "round"
    )
    template = next(ev for ev in events if ev.kind == "round")
    runaway = [
        dataclasses.replace(
            template, round_index=last_round + 1 + i, seq=10_000 + i
        )
        for i in range(3)
    ]
    findings = scan(events[:-1] + runaway + events[-1:])
    assert any("spinning past its budget" in f.message for f in findings)


def test_silent_vss_rounds_are_not_stalled():
    """Ideal-VSS sharing rounds carry zero traffic; that is not a stall."""
    events = _traced_run()
    silent = [
        ev for ev in events
        if ev.kind == "round" and ev.attrs.get("elements", 1) == 0
    ]
    assert silent, "the hybrid run must have silent sharing rounds"
    assert scan(events) == []


# -- disqualification storms ------------------------------------------------

def test_disqualification_storm_fires_above_t():
    tracer = Tracer()
    tracer.run_start(n=5, t=1)
    tracer.annotate("vss-qualified", parties=[0, 1])  # 3 dropped > t=1
    tracer.run_end()
    findings = scan(tracer.events)
    assert any(f.kind == "disqualification-storm" for f in findings)


def test_disqualifications_within_t_are_fine():
    tracer = Tracer()
    tracer.run_start(n=5, t=2)
    tracer.annotate("cut-and-choose-passed", parties=[0, 1, 2])
    tracer.run_end()
    assert scan(tracer.events) == []


# -- comm hotspots ----------------------------------------------------------

def test_hotspot_sender_is_flagged():
    tracer = Tracer()
    volume = HOTSPOT_MIN_ELEMENTS * 4
    for rnd in range(4):
        _msg(tracer, rnd, 0, 1, volume, rnd + 1)
        for pid in (1, 2, 3, 4):
            _msg(tracer, rnd, pid, 0, 1, rnd + 1)
        tracer.record_round(rnd, messages=5, elements=volume + 4)
    findings = scan(tracer.events)
    hot = [f for f in findings if f.kind == "comm-hotspot"]
    assert len(hot) == 1 and hot[0].party == 0


def test_balanced_traffic_has_no_hotspot():
    tracer = Tracer()
    for rnd in range(4):
        for pid in range(5):
            _msg(tracer, rnd, pid, (pid + 1) % 5, HOTSPOT_MIN_ELEMENTS, rnd + 1)
    assert not [f for f in scan(tracer.events) if f.kind == "comm-hotspot"]


def test_tiny_traces_stay_below_the_noise_floor():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, HOTSPOT_MIN_ELEMENTS - 10, 1)
    _msg(tracer, 0, 1, 0, 1, 1)
    assert not [f for f in scan(tracer.events) if f.kind == "comm-hotspot"]


def test_hotspot_falls_back_to_round_summaries_on_legacy_traces():
    tracer = Tracer()
    per_party = {"0": {"messages": 1, "elements": HOTSPOT_MIN_ELEMENTS * 8}}
    for pid in (1, 2, 3, 4):
        per_party[str(pid)] = {"messages": 1, "elements": 2}
    tracer.record_round(0, messages=4, elements=0, per_party=per_party)
    findings = scan(tracer.events)
    assert any(f.kind == "comm-hotspot" and f.party == 0 for f in findings)


# -- causal order -----------------------------------------------------------

def test_non_monotone_stamp_across_rounds_is_flagged():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, 1, 5)
    _msg(tracer, 1, 0, 1, 1, 5)  # must be strictly above 5
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "monotone" in f.message
               for f in findings)


def test_two_stamps_in_one_round_are_flagged():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, 1, 3)
    _msg(tracer, 0, 0, 2, 1, 4)  # same round, different stamp
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "within one round" in f.message
               for f in findings)


def test_send_below_delivered_stamp_violates_happens_before():
    tracer = Tracer()
    _msg(tracer, 0, 1, 0, 1, 9)   # party 0 receives stamp 9 in round 0
    _msg(tracer, 1, 0, 1, 1, 2)   # then sends with stamp 2 < 9
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "happens-before" in f.message
               for f in findings)


def test_same_round_delivery_does_not_constrain_same_round_send():
    """Lockstep semantics: round-k sends precede round-k receipts."""
    tracer = Tracer()
    _msg(tracer, 0, 1, 0, 1, 9)  # delivered to 0 this round...
    _msg(tracer, 0, 0, 1, 1, 2)  # ...so 0's round-0 send may be below 9
    _msg(tracer, 1, 0, 1, 1, 10)  # next round it must clear the floor
    assert not [f for f in scan(tracer.events) if f.kind == "causal-order"]


def test_broadcast_stamp_floors_every_party():
    tracer = Tracer()
    _msg(tracer, 0, 1, None, 5, 7)  # broadcast with stamp 7
    _msg(tracer, 1, 2, 0, 1, 3)     # party 2 sends below it next round
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "happens-before" in f.message
               for f in findings)


# -- virtual-time checks (schema v4) -----------------------------------------

def _timed_rounds(durations, messages=()):
    """A dense round sequence with virtual windows and an orderly
    run_end — invisible to the count-only stall checks by construction,
    so anything scan() reports comes from the timing checks."""
    tracer = Tracer()
    tracer.run_start(n=4, t=1)
    tracer.record_timing_model(
        latency={"model": "uniform", "base_ms": 1.0, "jitter_ms": 1.0},
        compute={"model": "zero"},
    )
    per_round: dict[int, list] = {}
    for rnd, sender, receiver, t_send, t_recv, lamport in messages:
        per_round.setdefault(rnd, []).append(
            (sender, receiver, t_send, t_recv, lamport)
        )
    now = 0.0
    for rnd, duration in enumerate(durations):
        start, now = now, now + duration
        for sender, receiver, t_send, t_recv, lamport in per_round.get(rnd, ()):
            tracer.record_message(rnd, sender, receiver, elements=1,
                                  lamport=lamport, t_send=t_send,
                                  t_recv=t_recv)
        tracer.record_round(rnd, messages=len(per_round.get(rnd, ())),
                            elements=len(per_round.get(rnd, ())),
                            t_start=start, t_end=now)
    tracer.run_end(rounds=len(durations), makespan_ms=now)
    return list(tracer.events)


def test_slow_round_caught_where_count_only_stall_check_is_blind():
    """Every round completes and run_end is present, so the pre-v4
    stall detector (round-sequence gaps + missing run_end) sees nothing
    — the regression this PR fixes.  The timing check must still flag
    the round that took 20x the median busy-round duration."""
    events = _timed_rounds([1.0, 1.0, 1.0, 1.0, 1.0, 20.0])
    findings = scan(events)
    assert not any(f.kind == "stalled-round" for f in findings)
    slow = [f for f in findings if f.kind == "slow-round"]
    assert len(slow) == 1
    assert slow[0].round_index == 5
    assert "median busy-round" in slow[0].message


def test_slow_round_silent_below_minimum_busy_rounds():
    """Three busy rounds is too small a sample for a median verdict."""
    events = _timed_rounds([1.0, 1.0, 20.0])
    assert not any(f.kind == "slow-round" for f in scan(events))


def test_message_arriving_before_send_is_timing_causality():
    """Swap one arrival stamp below its send stamp on an otherwise
    honest jittered run: Lamport stamps are untouched, so the pre-v4
    causal check stays silent and only the timing check can object."""
    events = _jittered_run()
    idx = next(
        i for i, ev in enumerate(events)
        if ev.kind == "msg" and ev.attrs.get("receiver") is not None
        and ev.attrs.get("t_send", 0.0) > 0.0
    )
    attrs = dict(events[idx].attrs)
    attrs["t_recv"] = attrs["t_send"] - 1.0
    events[idx] = dataclasses.replace(events[idx], attrs=attrs)
    findings = scan(events)
    assert findings
    assert {f.kind for f in findings} == {"timing-causality"}
    assert any("before its send" in f.message for f in findings)


def test_non_monotone_round_end_is_timing_causality():
    events = _timed_rounds([1.0, 2.0, -1.5, 3.0])  # round 2 ends early
    findings = [f for f in scan(events) if f.kind == "timing-causality"]
    assert len(findings) == 1
    assert findings[0].round_index == 2
    assert "not monotone" in findings[0].message


def test_critical_path_domination_names_the_straggler():
    """Five chained hops all sent by party 1: it gates the makespan."""
    chain = [
        # (round, sender, receiver, t_send, t_recv, lamport)
        (0, 1, 1, 0.0, 1.0, 1),
        (1, 1, 1, 1.0, 2.0, 2),
        (2, 1, 1, 2.0, 3.0, 3),
        (3, 1, 1, 3.0, 4.0, 4),
        (4, 1, 0, 4.0, 5.0, 5),
    ]
    events = _timed_rounds([1.0] * 5, messages=chain)
    findings = scan(events)
    domination = [f for f in findings if f.kind == "critical-path-domination"]
    assert len(domination) == 1
    assert domination[0].party == 1
    assert "gated by one straggling party" in domination[0].message
    assert not any(f.kind == "slow-round" for f in findings)


def test_jittered_honest_run_passes_timing_checks():
    assert scan(_jittered_run()) == []


def test_timing_checks_stay_silent_on_stripped_v3_traces():
    """The new checks arm only on schema-v4 stamps: strip them and the
    slow-round trace above must scan clean, like any legacy trace."""
    events = without_timing_fields(
        _timed_rounds([1.0, 1.0, 1.0, 1.0, 1.0, 20.0])
    )
    assert scan(events) == []
