"""The anomaly watchdog: clean on honest runs, loud on injected faults."""

from __future__ import annotations

import dataclasses

from repro.core import run_anonchan, scaled_parameters
from repro.obs import Tracer, scan_events
from repro.obs.anomaly import (
    HOTSPOT_MIN_ELEMENTS,
    Anomaly,
    scan_events as scan,
)
from repro.vss import GGOR13_COST, IdealVSS


def _traced_run(seed: int = 7) -> list:
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    return list(tracer.events)


def _msg(tracer, round_index, sender, receiver, elements, lamport):
    tracer.record_message(round_index, sender, receiver, elements, lamport)


def test_honest_traced_run_is_clean():
    assert scan_events(_traced_run()) == []


def test_anomaly_render_and_to_dict():
    a = Anomaly(kind="comm-hotspot", message="m", round_index=3, party=1)
    assert a.to_dict() == {
        "kind": "comm-hotspot", "message": "m", "round": 3, "party": 1,
    }
    assert "[comm-hotspot] round=3 party=1: m" == a.render()


# -- stalled rounds ---------------------------------------------------------

def test_dropped_round_is_a_stalled_round():
    events = _traced_run()
    idx = [i for i, ev in enumerate(events) if ev.kind == "round"][2]
    del events[idx]
    findings = scan(events)
    assert any(f.kind == "stalled-round" and "jumps" in f.message
               for f in findings)


def test_truncated_trace_without_run_end_is_stalled():
    events = _traced_run()
    assert events[-1].kind == "run_end"
    findings = scan(events[:-1])
    assert any(f.kind == "stalled-round" and "run_end" in f.message
               for f in findings)


def test_round_overrun_past_prediction_is_stalled():
    events = _traced_run()
    last_round = max(
        ev.round_index for ev in events if ev.kind == "round"
    )
    template = next(ev for ev in events if ev.kind == "round")
    runaway = [
        dataclasses.replace(
            template, round_index=last_round + 1 + i, seq=10_000 + i
        )
        for i in range(3)
    ]
    findings = scan(events[:-1] + runaway + events[-1:])
    assert any("spinning past its budget" in f.message for f in findings)


def test_silent_vss_rounds_are_not_stalled():
    """Ideal-VSS sharing rounds carry zero traffic; that is not a stall."""
    events = _traced_run()
    silent = [
        ev for ev in events
        if ev.kind == "round" and ev.attrs.get("elements", 1) == 0
    ]
    assert silent, "the hybrid run must have silent sharing rounds"
    assert scan(events) == []


# -- disqualification storms ------------------------------------------------

def test_disqualification_storm_fires_above_t():
    tracer = Tracer()
    tracer.run_start(n=5, t=1)
    tracer.annotate("vss-qualified", parties=[0, 1])  # 3 dropped > t=1
    tracer.run_end()
    findings = scan(tracer.events)
    assert any(f.kind == "disqualification-storm" for f in findings)


def test_disqualifications_within_t_are_fine():
    tracer = Tracer()
    tracer.run_start(n=5, t=2)
    tracer.annotate("cut-and-choose-passed", parties=[0, 1, 2])
    tracer.run_end()
    assert scan(tracer.events) == []


# -- comm hotspots ----------------------------------------------------------

def test_hotspot_sender_is_flagged():
    tracer = Tracer()
    volume = HOTSPOT_MIN_ELEMENTS * 4
    for rnd in range(4):
        _msg(tracer, rnd, 0, 1, volume, rnd + 1)
        for pid in (1, 2, 3, 4):
            _msg(tracer, rnd, pid, 0, 1, rnd + 1)
        tracer.record_round(rnd, messages=5, elements=volume + 4)
    findings = scan(tracer.events)
    hot = [f for f in findings if f.kind == "comm-hotspot"]
    assert len(hot) == 1 and hot[0].party == 0


def test_balanced_traffic_has_no_hotspot():
    tracer = Tracer()
    for rnd in range(4):
        for pid in range(5):
            _msg(tracer, rnd, pid, (pid + 1) % 5, HOTSPOT_MIN_ELEMENTS, rnd + 1)
    assert not [f for f in scan(tracer.events) if f.kind == "comm-hotspot"]


def test_tiny_traces_stay_below_the_noise_floor():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, HOTSPOT_MIN_ELEMENTS - 10, 1)
    _msg(tracer, 0, 1, 0, 1, 1)
    assert not [f for f in scan(tracer.events) if f.kind == "comm-hotspot"]


def test_hotspot_falls_back_to_round_summaries_on_legacy_traces():
    tracer = Tracer()
    per_party = {"0": {"messages": 1, "elements": HOTSPOT_MIN_ELEMENTS * 8}}
    for pid in (1, 2, 3, 4):
        per_party[str(pid)] = {"messages": 1, "elements": 2}
    tracer.record_round(0, messages=4, elements=0, per_party=per_party)
    findings = scan(tracer.events)
    assert any(f.kind == "comm-hotspot" and f.party == 0 for f in findings)


# -- causal order -----------------------------------------------------------

def test_non_monotone_stamp_across_rounds_is_flagged():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, 1, 5)
    _msg(tracer, 1, 0, 1, 1, 5)  # must be strictly above 5
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "monotone" in f.message
               for f in findings)


def test_two_stamps_in_one_round_are_flagged():
    tracer = Tracer()
    _msg(tracer, 0, 0, 1, 1, 3)
    _msg(tracer, 0, 0, 2, 1, 4)  # same round, different stamp
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "within one round" in f.message
               for f in findings)


def test_send_below_delivered_stamp_violates_happens_before():
    tracer = Tracer()
    _msg(tracer, 0, 1, 0, 1, 9)   # party 0 receives stamp 9 in round 0
    _msg(tracer, 1, 0, 1, 1, 2)   # then sends with stamp 2 < 9
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "happens-before" in f.message
               for f in findings)


def test_same_round_delivery_does_not_constrain_same_round_send():
    """Lockstep semantics: round-k sends precede round-k receipts."""
    tracer = Tracer()
    _msg(tracer, 0, 1, 0, 1, 9)  # delivered to 0 this round...
    _msg(tracer, 0, 0, 1, 1, 2)  # ...so 0's round-0 send may be below 9
    _msg(tracer, 1, 0, 1, 1, 10)  # next round it must clear the floor
    assert not [f for f in scan(tracer.events) if f.kind == "causal-order"]


def test_broadcast_stamp_floors_every_party():
    tracer = Tracer()
    _msg(tracer, 0, 1, None, 5, 7)  # broadcast with stamp 7
    _msg(tracer, 1, 2, 0, 1, 3)     # party 2 sends below it next round
    findings = scan(tracer.events)
    assert any(f.kind == "causal-order" and "happens-before" in f.message
               for f in findings)
