"""TimingReport: makespan, stragglers, critical path, prediction."""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import run_anonchan, scaled_parameters
from repro.network.runtime import InMemoryAsyncTransport, UniformLatency
from repro.obs import (
    TimingReport,
    Tracer,
    canonical_lines,
    histogram,
    without_timing_fields,
)
from repro.obs.timing import CriticalHop, _critical_path, _expected_round_ms
from repro.vss import GGOR13_COST, IdealVSS

BASELINE = (
    Path(__file__).parent / "data" / "trace_v3_lockstep_n5_seed0.canonical.jsonl"
)


def _traced_run(transport=None, seed: int = 0, n: int = 5) -> Tracer:
    params = scaled_parameters(n=n)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    run_anonchan(
        params, vss, messages, seed=seed, tracer=tracer, transport=transport
    )
    return tracer


def _jittered_run(seed: int = 0) -> Tracer:
    return _traced_run(
        transport=InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=3.0, jitter_ms=2.0), seed=seed
        ),
        seed=seed,
    )


# -- histogram --------------------------------------------------------------

def test_histogram_empty_and_degenerate():
    assert histogram([]) == []
    assert histogram([2.0, 2.0, 2.0]) == [(2.0, 2.0, 3)]


def test_histogram_buckets_cover_all_samples():
    values = [float(i) for i in range(17)]
    buckets = histogram(values, buckets=4)
    assert len(buckets) == 4
    assert sum(count for _, _, count in buckets) == len(values)
    assert buckets[0][0] == 0.0 and buckets[-1][1] == 16.0


# -- analytic expectation ---------------------------------------------------

def test_expected_round_ms_mirrors_models():
    assert _expected_round_ms({"model": "zero"}, 10) == 0.0
    assert _expected_round_ms({"model": "fixed", "base_ms": 4.0}, 3) == 4.0
    assert _expected_round_ms({"model": "fixed", "base_ms": 4.0}, 0) == 0.0
    # E[max of k U(1, 6)] = 1 + 5 * k / (k + 1)
    expected = _expected_round_ms(
        {"model": "uniform", "base_ms": 1.0, "jitter_ms": 5.0}, 4
    )
    assert abs(expected - (1.0 + 5.0 * 4 / 5)) < 1e-12


def test_expected_round_ms_matches_runtime_models():
    """The trace-side mirror must agree with the network-layer models."""
    from repro.network.runtime.models import FixedLatency, ZeroLatency

    for model, k in [
        (UniformLatency(base_ms=2.0, jitter_ms=7.0), 5),
        (FixedLatency(base_ms=3.5), 2),
        (ZeroLatency(), 9),
    ]:
        assert (
            _expected_round_ms(model.describe(), k)
            == model.expected_round_ms(k)
        )


# -- critical path on hand-built DAGs ---------------------------------------

def _hop(r, s, recv, t_send, t_recv):
    return CriticalHop(
        round_index=r, phase=f"phase-{r}", sender=s, receiver=recv,
        t_send=t_send, t_recv=t_recv,
    )


def test_critical_path_follows_latest_inbound_chain():
    msgs = [
        _hop(0, 1, 2, 0.0, 5.0),   # gates P2's round-1 send
        _hop(0, 3, 2, 0.0, 1.0),   # earlier arrival, not on the path
        _hop(1, 2, 0, 5.0, 9.0),   # the makespan-closing delivery
        _hop(1, 3, 0, 0.0, 2.0),
    ]
    path = _critical_path(msgs)
    assert [(h.round_index, h.sender, h.receiver) for h in path] == [
        (0, 1, 2),
        (1, 2, 0),
    ]


def test_critical_path_crosses_broadcasts():
    msgs = [
        _hop(0, 4, None, 3.0, 3.0),  # broadcast instant gates everyone
        _hop(1, 2, 0, 3.0, 7.0),
    ]
    path = _critical_path(msgs)
    assert [(h.sender, h.receiver) for h in path] == [(4, None), (2, 0)]


def test_critical_path_empty_without_messages():
    assert _critical_path([]) == []


def test_critical_path_stops_at_zero_time():
    """An all-zero (lockstep) trace yields a single-hop path, not the
    entire message history chained at t=0."""
    msgs = [_hop(r, r % 3, (r + 1) % 3, 0.0, 0.0) for r in range(6)]
    assert len(_critical_path(msgs)) == 1


# -- end-to-end: jittered async run -----------------------------------------

def test_jittered_run_report_end_to_end():
    tracer = _jittered_run()
    report = TimingReport.from_events(tracer.events)
    assert report.has_timing
    assert report.makespan_ms > 0.0
    assert report.latency_model == {
        "model": "uniform", "base_ms": 3.0, "jitter_ms": 2.0,
        "elements_per_ms": 0.0,
    }
    assert report.compute_model == {"model": "zero"}
    assert not report.realtime
    # Rounds are monotone and the last window ends at the makespan.
    ends = [w.t_end for w in report.rounds]
    assert ends == sorted(ends)
    assert abs(ends[-1] - report.makespan_ms) < 1e-9
    # The prediction is computable and within tolerance on this model.
    assert report.predicted_makespan_ms is not None
    assert report.predicted_makespan_ms > 0.0
    assert report.makespan_ok, (
        f"delta {report.makespan_delta:+.1%} outside ±{report.tolerance:.0%}"
    )
    # Critical path: strictly increasing rounds and arrival times,
    # ending at the makespan.
    path = report.critical_path
    assert path
    rounds = [h.round_index for h in path]
    assert rounds == sorted(rounds) and len(set(rounds)) == len(rounds)
    recvs = [h.t_recv for h in path]
    assert recvs == sorted(recvs)
    assert abs(recvs[-1] - report.makespan_ms) < 1e-9
    assert abs(sum(report.critical_share.values()) - 1.0) < 1e-9
    assert report.dominant_party in report.critical_share
    # Every closed round names a straggler that actually sent in it.
    assert sum(report.straggler_counts.values()) == sum(
        1 for w in report.rounds if w.straggler is not None
    )


def test_jittered_report_renders_and_serializes():
    report = TimingReport.from_events(_jittered_run().events)
    text = report.render_text()
    assert "observed makespan" in text
    assert "predicted makespan" in text
    assert "[OK]" in text
    assert "critical path" in text
    payload = report.to_dict()
    # JSON-stable end to end.
    assert json.loads(json.dumps(payload)) == payload
    assert payload["makespan_ok"] is True
    assert payload["version"] == 1


def test_report_is_deterministic_across_replays():
    a = TimingReport.from_events(_jittered_run(seed=3).events)
    b = TimingReport.from_events(_jittered_run(seed=3).events)
    assert a.to_dict() == b.to_dict()


def test_different_seeds_give_different_makespans():
    a = TimingReport.from_events(_jittered_run(seed=1).events)
    b = TimingReport.from_events(_jittered_run(seed=2).events)
    assert a.makespan_ms != b.makespan_ms


# -- lockstep degenerates to zero -------------------------------------------

def test_lockstep_report_is_all_zero_and_ok():
    report = TimingReport.from_events(_traced_run().events)
    assert report.has_timing
    assert report.makespan_ms == 0.0
    assert report.latency_model == {"model": "zero"}
    assert report.predicted_makespan_ms == 0.0
    assert report.makespan_delta == 0.0
    assert report.makespan_ok
    assert all(w.t_start == 0.0 and w.t_end == 0.0 for w in report.rounds)


def test_pre_v4_trace_reports_no_timing():
    stripped = without_timing_fields(_traced_run().events)
    report = TimingReport.from_events(stripped)
    assert not report.has_timing
    assert "no virtual-time stamps" in report.render_text()
    assert report.to_dict()["has_timing"] is False


# -- the PR-8 baseline: v4 strips back to the pre-timing trace --------------

def test_lockstep_canonical_trace_matches_pre_timing_baseline():
    """Stripping the v4 timing fields from today's lockstep trace must
    reproduce the committed pre-timing (v3) trace byte for byte —
    the timing layer added information, it changed nothing."""
    tracer = _traced_run(seed=0)
    lines = canonical_lines(without_timing_fields(tracer.events))
    baseline = BASELINE.read_text().splitlines()
    assert lines == baseline


def test_async_zero_latency_strips_to_same_baseline():
    tracer = _traced_run(transport=InMemoryAsyncTransport(), seed=0)
    lines = canonical_lines(without_timing_fields(tracer.events))
    assert lines == BASELINE.read_text().splitlines()
