"""The disabled observability path must cost (near) nothing.

Two kinds of guards:

- *structural* — the zero-cost claims are properties of the object
  graph (no instance-dict wrappers, shared null singletons), which we
  can assert deterministically;
- *relative timing* — the null hooks themselves, under very generous
  bounds so CI noise cannot flake the suite.
"""

from __future__ import annotations

import time

from repro.core import run_anonchan, scaled_parameters
from repro.fields import gf2k
from repro.obs import (
    NULL_PROFILER,
    NULL_TRACER,
    OpProfiler,
    Tracer,
    get_profiler,
    profiled,
)
from repro.vss import GGOR13_COST, IdealVSS


def _best_seconds(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- structural guards -----------------------------------------------------

def test_default_state_is_the_null_profiler():
    assert get_profiler() is NULL_PROFILER
    assert NULL_PROFILER.enabled is False
    assert NULL_TRACER.enabled is False


def test_uninstrumented_fields_have_no_wrappers():
    """Scalar field ops dispatch through the class — zero added cost."""
    field = gf2k(16)
    for op in field._PROFILE_OPS:
        assert op not in field.__dict__


def test_null_tracer_span_is_one_shared_object():
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_profiled_context_leaves_no_residue():
    field = gf2k(16)
    with profiled(OpProfiler(), field):
        pass
    assert get_profiler() is NULL_PROFILER
    for op in field._PROFILE_OPS:
        assert op not in field.__dict__


def test_batch_kernels_skip_accounting_when_disabled():
    """A kernel call under the null profiler records nothing anywhere."""
    from repro.fields.vectorized import vector_backend
    from repro.sharing import ShamirScheme

    field = gf2k(16)
    backend = vector_backend(field)
    assert backend is not None
    import random

    scheme = ShamirScheme(field, 7, 3, backend="vectorized")
    shares = scheme.share_matrix(list(range(64)), random.Random(1))
    assert shares  # the kernel ran...
    assert get_profiler() is NULL_PROFILER  # ...and nothing was installed


# -- relative timing guards ------------------------------------------------

def test_null_profiler_hook_is_cheap():
    """One null count() costs about as much as any no-op method call."""
    n = 50_000

    class _Plain:
        __slots__ = ()

        def noop(self, component, op, k=1):
            return None

    plain = _Plain()

    def null_hooks():
        count = NULL_PROFILER.count
        for _ in range(n):
            count("fields", "mul")

    def plain_calls():
        noop = plain.noop
        for _ in range(n):
            noop("fields", "mul")

    baseline = _best_seconds(plain_calls)
    nulled = _best_seconds(null_hooks)
    # Same shape of work; allow a wide margin for interpreter noise.
    assert nulled < baseline * 10 + 1e-3


def test_scalar_field_mul_uninstrumented_vs_wrapped():
    """Instrumentation is opt-in: the *uninstrumented* path must not pay
    for the profiler's existence.  (The wrapped path may be slower —
    that is the documented cost of opting in.)"""
    field = gf2k(16)
    n = 20_000

    def muls():
        mul = field.mul
        for i in range(n):
            mul(i & 0xFFFF, 257)

    uninstrumented = _best_seconds(muls)
    undo = field.instrument(OpProfiler())
    try:
        wrapped = _best_seconds(muls)
    finally:
        undo()
    after_undo = _best_seconds(muls)
    # Wrapping costs something; removing it restores the original speed
    # (generous factor: both measure the identical code path).
    assert after_undo < max(uninstrumented, 1e-6) * 5 + 1e-3
    assert wrapped > 0  # sanity: the wrapped loop actually ran


def test_disabled_observability_run_matches_plain_run_speed():
    """End-to-end: a run with no tracer/profiler attached is within a
    small factor of itself — i.e. the instrumented call sites add no
    measurable fixed cost when disabled."""
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}

    def plain():
        run_anonchan(params, vss, messages, seed=3)

    plain_best = _best_seconds(plain, repeats=3)
    # Re-measure the same disabled path; both go through the
    # get_profiler()/NULL_TRACER call sites.
    again_best = _best_seconds(plain, repeats=3)
    slower = max(plain_best, again_best)
    faster = min(plain_best, again_best)
    assert slower < faster * 5 + 1e-3


def test_disabled_run_results_equal_profiled_run_results():
    """Profiling is observation only: protocol outputs are identical."""
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}

    plain = run_anonchan(params, vss, messages, seed=3)
    tracer = Tracer()
    profiled_result = run_anonchan(
        params, vss, messages, seed=3, tracer=tracer,
        profiler=OpProfiler(tracer),
    )
    assert plain.metrics == profiled_result.metrics
    assert plain.outputs[0].output == profiled_result.outputs[0].output
    assert plain.outputs[0].passed == profiled_result.outputs[0].passed
