"""CommMatrix aggregation and CommReport analytic conformance."""

from __future__ import annotations

import dataclasses
import json

from repro.core import run_anonchan, scaled_parameters
from repro.obs import BROADCAST, CommMatrix, CommReport, Tracer
from repro.vss import GGOR13_COST, IdealVSS


def _traced_run(seed: int = 7, n: int = 5) -> Tracer:
    params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(n)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    return tracer


# -- CommMatrix -------------------------------------------------------------

def test_matrix_records_links_and_phases():
    m = CommMatrix()
    m.record(sender=0, receiver=1, elements=10, phase="step 1")
    m.record(sender=0, receiver=1, elements=5, phase="step 2")
    m.record(sender=1, receiver=None, elements=8, phase="step 1")
    assert m.message_count == 3
    assert m.links[(0, 1)].messages == 2
    assert m.links[(0, 1)].elements == 15
    assert m.links[(1, BROADCAST)].elements == 8
    assert m.parties == [0, 1]
    assert m.sent_by(0).elements == 15
    assert m.sent_by(1).elements == 8
    totals = m.phase_totals()
    assert totals["step 1"].elements == 18
    assert totals["step 2"].elements == 5


def test_matrix_heatmap_has_trailing_broadcast_column():
    m = CommMatrix()
    m.record(sender=0, receiver=2, elements=4, phase=None)
    m.record(sender=2, receiver=None, elements=9, phase=None)
    parties, rows = m.heatmap()
    assert parties == [0, 2]
    # columns: P0, P2, broadcast
    assert rows[0] == [0, 4, 0]
    assert rows[1] == [0, 0, 9]


def test_matrix_from_events_matches_traced_run_totals():
    tracer = _traced_run()
    matrix = CommMatrix.from_events(tracer.events)
    msg_events = [ev for ev in tracer.events if ev.kind == "msg"]
    assert matrix.message_count == len(msg_events)
    assert sum(s.elements for s in matrix.links.values()) == sum(
        ev.attrs["elements"] for ev in msg_events
    )
    # Every sender in the run appears in the matrix.
    assert matrix.parties == [0, 1, 2, 3, 4]


def test_matrix_to_dict_is_json_serializable():
    matrix = CommMatrix.from_events(_traced_run().events)
    data = json.loads(json.dumps(matrix.to_dict()))
    assert data["message_count"] == matrix.message_count
    assert all("sender" in link for link in data["links"])


# -- CommReport: the dynamic side of E2 and the bandwidth bounds -----------

def test_traced_run_matches_analytic_prediction():
    report = CommReport.from_events(_traced_run().events)
    assert report.divergences == []
    assert report.consistency == []
    assert report.matches_prediction


def test_report_verifies_e2_two_broadcast_rounds():
    report = CommReport.from_events(_traced_run().events)
    assert report.observed_broadcast_rounds == 2
    assert report.predicted["broadcast_rounds"] == 2


def test_report_checks_every_phase_against_its_bound():
    report = CommReport.from_events(_traced_run().events)
    bounds = {e["phase"]: e for e in report.predicted["phases"]}
    traffic_phases = [pc for pc in report.observed_phases if pc.elements]
    assert traffic_phases, "traced run must show wire traffic"
    for pc in traffic_phases:
        assert pc.phase in bounds
        assert pc.elements <= bounds[pc.phase]["max_elements"]


def test_tampered_broadcast_prediction_is_a_divergence():
    events = list(_traced_run().events)
    start = events[0]
    predicted = dict(start.attrs["predicted_comm"])
    predicted["broadcast_rounds"] = 5
    events[0] = dataclasses.replace(
        start, attrs={**start.attrs, "predicted_comm": predicted}
    )
    report = CommReport.from_events(events)
    assert any("E2" in d for d in report.divergences)
    assert not report.matches_prediction


def test_tampered_bound_flags_bandwidth_excess():
    events = list(_traced_run().events)
    start = events[0]
    predicted = dict(start.attrs["predicted_comm"])
    predicted["phases"] = [
        {**e, "max_elements": 0} for e in predicted["phases"]
    ]
    events[0] = dataclasses.replace(
        start, attrs={**start.attrs, "predicted_comm": predicted}
    )
    report = CommReport.from_events(events)
    assert any("exceed the analytic bound" in d for d in report.divergences)


def test_tampered_msg_volume_breaks_cross_check():
    events = list(_traced_run().events)
    idx = next(i for i, ev in enumerate(events) if ev.kind == "msg")
    ev = events[idx]
    events[idx] = dataclasses.replace(
        ev, attrs={**ev.attrs, "elements": ev.attrs["elements"] + 1}
    )
    report = CommReport.from_events(events)
    assert any("round summary counts" in c for c in report.consistency)
    assert not report.matches_prediction


def test_legacy_trace_without_msg_events_skips_cross_check():
    events = [ev for ev in _traced_run().events if ev.kind != "msg"]
    report = CommReport.from_events(events)
    assert report.consistency == []
    assert report.matrix.message_count == 0


def test_report_to_dict_and_render_text():
    report = CommReport.from_events(_traced_run().events)
    data = json.loads(report.to_json())
    assert data["totals"]["matches_prediction"] is True
    assert data["totals"]["observed_broadcast_rounds"] == 2
    assert data["matrix"]["message_count"] == report.matrix.message_count
    text = report.render_text()
    assert "broadcast rounds: 2 observed, 2 predicted (E2)" in text
    assert "hottest links" in text
    assert "within every analytic bound" in text


def test_per_round_msg_sums_equal_round_summaries_exactly():
    """Broadcast msg volumes include fan-out, so the accountings tie out."""
    tracer = _traced_run()
    by_round_msgs: dict[int, int] = {}
    by_round_summary: dict[int, int] = {}
    for ev in tracer.events:
        if ev.kind == "msg":
            by_round_msgs[ev.round_index] = (
                by_round_msgs.get(ev.round_index, 0) + ev.attrs["elements"]
            )
        elif ev.kind == "round":
            by_round_summary[ev.round_index] = ev.attrs.get("elements", 0)
    for round_index, total in by_round_summary.items():
        assert by_round_msgs.get(round_index, 0) == total
