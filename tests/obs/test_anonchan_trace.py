"""Acceptance tests: dynamic verification of the paper's E1/E2 claims.

The static :func:`repro.core.trace.round_schedule` *predicts* the
schedule; these tests assert a traced execution *observes* exactly it —
per-phase round counts, per-phase broadcast-round counts, and the
totals ``r_VSS-share + 5`` (E1) and ``share_broadcast_rounds`` (E2) —
and that the event stream is a deterministic function of seed and
parameters, honest or attacked.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import AnonymousChannel, run_anonchan, scaled_parameters
from repro.core.adversaries import jamming_material
from repro.core.trace import (
    round_schedule,
    total_broadcast_rounds,
    total_rounds,
)
from repro.obs import RunMetrics, RunReport, Tracer, canonical_lines
from repro.vss import GGOR13_COST, RB89_COST, IdealVSS


def _setup(n: int = 5, cost=GGOR13_COST):
    params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=cost)
    messages = {i: params.field(100 + i) for i in range(n)}
    return params, vss, messages


def _trace(params, vss, messages, seed=0, corrupt_materials=None) -> Tracer:
    tracer = Tracer()
    result = run_anonchan(
        params, vss, messages, seed=seed,
        corrupt_materials=corrupt_materials, tracer=tracer,
    )
    assert result.outputs[0].output is not None
    return tracer


@pytest.mark.parametrize("cost", [GGOR13_COST, RB89_COST])
def test_observed_schedule_matches_prediction_exactly(cost):
    """E1/E2 dynamically: observed == round_schedule, phase by phase."""
    params, vss, messages = _setup(cost=cost)
    tracer = _trace(params, vss, messages)
    rm = RunMetrics.from_events(tracer.events)

    predicted = round_schedule(params, vss.cost)
    predicted_rounds_by_phase = Counter(r.phase for r in predicted)
    predicted_bc_by_phase = Counter(
        r.phase for r in predicted if r.uses_broadcast
    )

    observed_rounds_by_phase = {
        pm.phase: pm.rounds for pm in rm.phases if pm.rounds
    }
    observed_bc_by_phase = {
        pm.phase: pm.broadcast_rounds
        for pm in rm.phases
        if pm.broadcast_rounds
    }
    assert observed_rounds_by_phase == dict(predicted_rounds_by_phase)
    assert observed_bc_by_phase == dict(predicted_bc_by_phase)

    # E1: total rounds = r_VSS-share + 5, observed, not just predicted.
    assert rm.rounds == total_rounds(params, vss.cost)
    assert rm.rounds == vss.cost.share_rounds + 5
    # E2: every broadcast round sits inside the VSS sharing phase.
    assert rm.broadcast_rounds == total_broadcast_rounds(params, vss.cost)
    assert (
        rm.phase("step 1: VSS-Share").broadcast_rounds
        == vss.cost.share_broadcast_rounds
    )

    report = RunReport.from_events(tracer.events)
    assert report.matches_prediction, report.divergences


def test_schedule_holds_under_jamming_attack():
    """A Byzantine prover changes outcomes, never the schedule shape."""
    params, vss, messages = _setup()
    attack = {4: jamming_material(params, random.Random(11))}
    tracer = _trace(params, vss, messages, seed=3, corrupt_materials=attack)
    report = RunReport.from_events(tracer.events)
    assert report.matches_prediction, report.divergences
    meta = RunMetrics.from_events(tracer.events).meta
    assert meta["corrupted"] == [4]
    assert meta["trace_owner"] == 0  # lowest honest party carries spans


def test_trace_determinism_same_seed():
    """Same seed + params => identical event stream modulo timestamps."""
    params, vss, messages = _setup()
    first = _trace(params, vss, messages, seed=5)
    params2, vss2, messages2 = _setup()
    second = _trace(params2, vss2, messages2, seed=5)
    assert canonical_lines(first.events) == canonical_lines(second.events)


def test_trace_determinism_under_active_adversary():
    params, vss, messages = _setup()
    streams = []
    for _ in range(2):
        p, v, m = _setup()
        attack = {4: jamming_material(p, random.Random(9))}
        streams.append(
            canonical_lines(
                _trace(p, v, m, seed=8, corrupt_materials=attack).events
            )
        )
    assert streams[0] == streams[1]


def test_different_seeds_differ_somewhere():
    """The canonical stream is seed-sensitive (it carries real data)."""
    params, vss, messages = _setup()
    a = canonical_lines(_trace(params, vss, messages, seed=1).events)
    b = canonical_lines(_trace(params, vss, messages, seed=2).events)
    assert a != b


def test_untraced_run_unchanged_by_instrumentation():
    """tracer=None keeps byte-identical metrics (the no-op fast path)."""
    params, vss, messages = _setup()
    plain = run_anonchan(params, vss, messages, seed=4)
    traced_tracer = Tracer()
    traced = run_anonchan(
        params, vss, messages, seed=4, tracer=traced_tracer
    )
    assert plain.metrics == traced.metrics
    assert plain.outputs[0].output == traced.outputs[0].output
    assert traced_tracer.events  # and the trace actually recorded


def test_facade_send_accepts_tracer():
    tracer = Tracer()
    chan = AnonymousChannel(n=5)
    report = chan.send({0: 10, 1: 20, 2: 30, 3: 40, 4: 50}, tracer=tracer)
    rm = RunMetrics.from_events(tracer.events)
    assert rm.rounds == report.rounds
    assert rm.broadcast_rounds == report.broadcast_rounds
