"""JSONL round-trip, schema validation, and report rendering/diffing."""

from __future__ import annotations

import dataclasses
import json

from repro.core import run_anonchan, scaled_parameters
from repro.obs import (
    RunReport,
    Tracer,
    canonical_lines,
    read_jsonl,
    validate_events,
    validate_file,
    without_timings,
    write_jsonl,
)
from repro.vss import GGOR13_COST, IdealVSS

from .test_tracer import fixed_clock


def _traced_run(seed: int = 7) -> Tracer:
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = _traced_run()
    path = tmp_path / "trace.jsonl"
    count = write_jsonl(tracer.events, path)
    assert count == len(tracer.events)
    loaded = read_jsonl(path)
    assert loaded == tracer.events


def test_traced_run_passes_schema_validation(tmp_path):
    tracer = _traced_run()
    assert validate_events(tracer.events) == []
    path = tmp_path / "trace.jsonl"
    write_jsonl(tracer.events, path)
    assert validate_file(path) == []


def test_validation_flags_corrupted_streams():
    tracer = Tracer(clock=fixed_clock())
    tracer.run_start(n=3)
    with tracer.span("phase"):
        tracer.record_round(0, messages=1)
    tracer.run_end()
    # events = [run_start, span_start, round, span_end, run_end]
    events = list(tracer.events)

    missing_seq = [events[0], events[2], events[3], events[4]]
    assert any("seq" in e for e in validate_events(missing_seq))

    bad_kind = [dataclasses.replace(events[0], kind="bogus")] + events[1:]
    assert any("unknown kind" in e for e in validate_events(bad_kind))

    unbalanced = [events[0], events[1], events[2], events[4]]
    assert any("never closed" in e for e in validate_events(unbalanced))

    late_start = [events[1], events[0], events[2], events[3], events[4]]
    assert any(
        "run_start must be the first" in e for e in validate_events(late_start)
    )


def test_validation_flags_non_consecutive_rounds():
    tracer = Tracer(clock=fixed_clock())
    tracer.record_round(0, messages=1)
    tracer.record_round(2, messages=1)
    errors = validate_events(tracer.events)
    assert any("not consecutive" in e for e in errors)


def test_without_timings_strips_only_the_clock():
    tracer = _traced_run()
    data = tracer.events[0].to_dict()
    stripped = without_timings(data)
    assert "t_ns" not in stripped
    assert set(data) - set(stripped) == {"t_ns"}


def test_report_matches_prediction_and_renders():
    tracer = _traced_run()
    report = RunReport.from_events(tracer.events)
    assert report.matches_prediction
    assert report.divergences == []
    text = report.render_text()
    assert "matches the static prediction exactly" in text
    assert "step 3a: cut-and-choose openings" in text
    payload = json.loads(report.to_json())
    assert payload["totals"]["matches_prediction"] is True
    assert payload["totals"]["observed_rounds"] == GGOR13_COST.share_rounds + 5
    assert payload["totals"]["observed_broadcast_rounds"] == 2


def test_report_flags_divergence():
    tracer = _traced_run()
    events = list(tracer.events)
    # Tamper with the observed stream: pretend the challenge round
    # used the broadcast channel.
    tampered = []
    for ev in events:
        if ev.kind == "round" and ev.phase == "step 2: challenge":
            attrs = dict(ev.attrs)
            attrs["broadcasters"] = [0]
            ev = dataclasses.replace(ev, attrs=attrs)
        tampered.append(ev)
    report = RunReport.from_events(tampered)
    assert not report.matches_prediction
    assert any("broadcast" in d for d in report.divergences)
    assert "DIVERGES" in report.render_text()


def test_canonical_lines_are_deterministic_json():
    tracer = _traced_run()
    lines = canonical_lines(tracer.events)
    assert len(lines) == len(tracer.events)
    for line in lines:
        assert "t_ns" not in json.loads(line)
