"""The BENCH_*.json baseline/regression engine (repro.obs.bench)."""

from __future__ import annotations

import copy
import glob
import json
import os

import pytest

from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    BenchComparison,
    MetricDelta,
    compare_files,
    compare_payloads,
    iter_metrics,
    load_bench,
    metric_direction,
)

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _payload(**overrides) -> dict:
    base = {
        "version": 1,
        "experiment": "emu_demo",
        "title": "demo",
        "headers": ["batch", "scalar ms", "batched ms", "speedup", "n"],
        "rows": [
            [256, 8.8, 1.7, 5.2, 7],
            [1024, 34.0, 3.5, 9.7, 7],
        ],
        "notes": "",
    }
    base.update(overrides)
    return base


# -- direction heuristics --------------------------------------------------

@pytest.mark.parametrize(
    "header, expected",
    [
        ("scalar ms", "lower"),
        ("batched ms", "lower"),
        ("wall s", "lower"),
        ("time (s)", "lower"),
        ("share ms (scalar)", "lower"),
        ("speedup", "higher"),
        ("throughput", "higher"),
        ("ops", "higher"),
        ("n", None),
        ("kappa", None),
        ("items", None),  # 'ms' must not fire as a substring
        ("rounds", None),
        ("elements", None),
    ],
)
def test_metric_direction(header, expected):
    assert metric_direction(header) == expected


# -- metric extraction -----------------------------------------------------

def test_iter_metrics_skips_strings_and_bools():
    payload = _payload(
        headers=["case", "ms", "total", "ok"],
        rows=[["a", 1.5, "1,296", True]],
    )
    assert iter_metrics(payload) == {"a/ms": 1.5}


def test_iter_metrics_keeps_first_duplicate_row_label():
    payload = _payload(
        headers=["case", "ms"],
        rows=[["a", 1.0], ["a", 99.0]],
    )
    assert iter_metrics(payload) == {"a/ms": 1.0}


# -- MetricDelta semantics -------------------------------------------------

def test_rel_delta_and_regression_thresholds():
    d = MetricDelta("256/batched ms", baseline=10.0, current=12.5,
                    direction="lower")
    assert d.rel_delta == pytest.approx(0.25)
    assert d.regressed(0.20) and not d.improved(0.20)
    assert not d.regressed(0.30)

    faster = MetricDelta("256/batched ms", 10.0, 7.0, "lower")
    assert faster.improved(0.20) and not faster.regressed(0.20)

    slower_speedup = MetricDelta("256/speedup", 10.0, 7.0, "higher")
    assert slower_speedup.regressed(0.20) and not slower_speedup.improved(0.20)

    info = MetricDelta("256/n", 7.0, 70.0, None)
    assert not info.regressed(0.20) and not info.improved(0.20)


def test_zero_baseline_yields_infinite_delta_not_crash():
    d = MetricDelta("x/ms", 0.0, 5.0, "lower")
    assert d.rel_delta == float("inf")
    assert d.regressed()
    assert MetricDelta("x/ms", 0.0, 0.0, "lower").rel_delta == 0.0


# -- payload comparison ----------------------------------------------------

def test_identical_payloads_pass():
    comparison = compare_payloads(_payload(), _payload())
    assert comparison.ok
    assert comparison.regressions == []
    assert comparison.missing == [] and comparison.added == []
    assert len(comparison.deltas) == 8  # 2 rows x 4 numeric columns


def test_injected_slowdown_is_detected():
    current = _payload()
    current["rows"] = copy.deepcopy(current["rows"])
    current["rows"][1][2] = 3.5 * 1.25  # 1024/batched ms +25%
    comparison = compare_payloads(_payload(), current)
    assert not comparison.ok
    (regression,) = comparison.regressions
    assert regression.metric == "1024/batched ms"
    assert regression.rel_delta == pytest.approx(0.25)
    assert "REGRESSED" in comparison.render_table()


def test_improved_speedup_is_not_a_regression():
    current = _payload()
    current["rows"] = copy.deepcopy(current["rows"])
    current["rows"][0][3] = 5.2 * 2  # speedup doubled: improvement
    comparison = compare_payloads(_payload(), current)
    assert comparison.ok
    assert [d.metric for d in comparison.improvements] == ["256/speedup"]
    assert "improved" in comparison.render_table()


def test_informational_columns_never_regress():
    current = _payload()
    current["rows"] = copy.deepcopy(current["rows"])
    current["rows"][0][4] = 700  # n exploded — informational only
    assert compare_payloads(_payload(), current).ok


def test_experiment_mismatch_raises():
    with pytest.raises(ValueError, match="experiment mismatch"):
        compare_payloads(_payload(), _payload(experiment="other"))


def test_missing_and_added_metrics_are_reported():
    current = _payload(rows=[[256, 8.8, 1.7, 5.2, 7], [4096, 1.0, 1.0, 1.0, 7]])
    comparison = compare_payloads(_payload(), current)
    assert comparison.missing == [
        "1024/batched ms", "1024/n", "1024/scalar ms", "1024/speedup",
    ]
    assert comparison.added == [
        "4096/batched ms", "4096/n", "4096/scalar ms", "4096/speedup",
    ]
    assert comparison.ok  # drift is reported, not a regression
    table = comparison.render_table()
    assert "missing from current run" in table
    assert "new metric (no baseline)" in table


def test_threshold_is_configurable():
    current = _payload()
    current["rows"] = copy.deepcopy(current["rows"])
    current["rows"][0][1] = 8.8 * 1.10  # +10%
    assert compare_payloads(_payload(), current).ok  # default 20%
    assert not compare_payloads(_payload(), current, threshold=0.05).ok


# -- file layer ------------------------------------------------------------

def test_load_bench_shape_checks(tmp_path):
    bogus = tmp_path / "BENCH_x.json"
    bogus.write_text(json.dumps({"experiment": "x"}), encoding="utf-8")
    with pytest.raises(ValueError, match="missing 'headers'"):
        load_bench(bogus)
    bogus.write_text(json.dumps([1, 2]), encoding="utf-8")
    with pytest.raises(ValueError, match="not a JSON object"):
        load_bench(bogus)


def test_compare_files_round_trip(tmp_path):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(_payload()), encoding="utf-8")
    current = _payload()
    current["rows"] = copy.deepcopy(current["rows"])
    current["rows"][0][2] = 1.7 * 2  # batched ms doubled
    cur.write_text(json.dumps(current), encoding="utf-8")
    comparison = compare_files(base, cur, threshold=DEFAULT_THRESHOLD)
    assert [d.metric for d in comparison.regressions] == ["256/batched ms"]


def test_committed_baselines_pass_against_themselves():
    """Every root BENCH_*.json compares clean against itself."""
    paths = sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json")))
    assert paths, "repo must ship root BENCH_*.json baselines"
    for path in paths:
        comparison = compare_files(path, path)
        assert comparison.ok, path
        assert comparison.regressions == []


def test_committed_baselines_contain_directional_metrics():
    """The perf-trajectory artifacts expose at least one gated metric."""
    path = os.path.join(ROOT, "BENCH_emu_batch_sharing.json")
    payload = load_bench(path)
    directions = {
        metric_direction(header) for header in payload["headers"][1:]
    }
    assert "lower" in directions  # the ms columns are real gates


def test_render_table_without_deltas_is_still_renderable():
    table = BenchComparison(experiment="empty").render_table()
    assert "empty: 0 metrics" in table
