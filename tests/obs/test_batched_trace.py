"""Canonical v4 trace conformance for the batched hot path.

The v3 baseline (``trace_v3_lockstep_n5_seed0``) strips the virtual
timing fields; under the zero-latency lockstep transport those fields
are themselves deterministic, so PR 10 pins the *full* v4 canonical
form — and requires the batched backend to reproduce it byte-for-byte.
A batched run that sent different payloads, reordered rounds, or even
changed a message size would break these lines.

The baseline was generated from a ``sharing_backend="scalar"`` lockstep
run (the reference path); the test then holds every backend mode to it.
Regenerate with::

    PYTHONPATH=src python -c "
    from dataclasses import replace
    from pathlib import Path
    from repro.core import run_anonchan, scaled_parameters
    from repro.obs import Tracer, canonical_lines
    from repro.vss import GGOR13_COST, IdealVSS
    params = replace(scaled_parameters(n=5), sharing_backend='scalar')
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    tracer = Tracer()
    run_anonchan(params, vss,
                 {i: params.field(100 + i) for i in range(5)},
                 seed=0, tracer=tracer)
    Path('tests/obs/data/trace_v4_lockstep_n5_seed0.canonical.jsonl'
         ).write_text('\\n'.join(canonical_lines(tracer.events)) + '\\n')"
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import run_anonchan, scaled_parameters
from repro.obs import Tracer, canonical_lines, without_timing_fields
from repro.obs.profiler import OpProfiler
from repro.vss import GGOR13_COST, IdealVSS

BASELINE_V4 = (
    Path(__file__).parent / "data" / "trace_v4_lockstep_n5_seed0.canonical.jsonl"
)
BASELINE_V3 = (
    Path(__file__).parent / "data" / "trace_v3_lockstep_n5_seed0.canonical.jsonl"
)

BACKEND_MODES = ("scalar", "auto", "vectorized")


def _traced_run(backend: str, profiler: OpProfiler | None = None) -> Tracer:
    params = replace(scaled_parameters(n=5), sharing_backend=backend)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    messages = {i: params.field(100 + i) for i in range(5)}
    tracer = Tracer()
    run_anonchan(
        params, vss, messages, seed=0, tracer=tracer, profiler=profiler
    )
    return tracer


@pytest.mark.parametrize("backend", BACKEND_MODES)
def test_backend_reproduces_v4_baseline(backend):
    lines = canonical_lines(_traced_run(backend).events)
    assert lines == BASELINE_V4.read_text().splitlines()


def test_vectorized_run_engages_batched_path():
    """The byte-identity above must hold *while* the fast path runs —
    otherwise the conformance cell silently degrades to scalar-vs-scalar.
    (The profiler adds ``prof`` events to the trace, so the counter check
    runs separately from the baseline comparison above.)"""
    prof = OpProfiler()
    _traced_run("vectorized", profiler=prof)
    assert prof.total("vss", "deal_batched") > 0
    assert prof.total("vss", "combine_batched") > 0
    assert prof.total("vss", "combine_scalar_fallback") == 0


def test_v4_baseline_downgrades_to_v3_baseline():
    """Stripping the timing fields from the v4 baseline must recover the
    v3 baseline exactly: the two pinned artifacts describe one run."""
    from repro.obs.events import TraceEvent

    # Canonical lines strip ``t_ns``; from_dict needs it, and the
    # canonical re-encoding below strips it again.
    events = [
        TraceEvent.from_dict({**json.loads(line), "t_ns": 0})
        for line in BASELINE_V4.read_text().splitlines()
    ]
    stripped = canonical_lines(without_timing_fields(events))
    assert stripped == BASELINE_V3.read_text().splitlines()


def test_v4_baseline_carries_timing_fields():
    """The baseline really is the v4 form: schema 4, the timing-model
    note, and a makespan — i.e. the downgrade test above is not vacuous."""
    lines = BASELINE_V4.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["attrs"]["schema_version"] == 4
    assert any('"timing-model"' in line for line in lines)
    assert any('"makespan_ms"' in line for line in lines)
