"""Smoke tests: every shipped example runs to completion."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main() if hasattr(module, "main") else None
    finally:
        sys.modules.pop(spec.name, None)


def test_quickstart_runs(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "jammer caught by cut-and-choose: True" in out


def test_quickstart_trace_flag_writes_valid_jsonl(tmp_path, capsys):
    from repro.obs import validate_file

    path = EXAMPLES / "quickstart.py"
    spec = importlib.util.spec_from_file_location("example_quickstart_t", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    trace = tmp_path / "quickstart.jsonl"
    try:
        spec.loader.exec_module(module)
        module.main(["--trace", str(trace)])
    finally:
        sys.modules.pop(spec.name, None)
    out = capsys.readouterr().out
    assert "matches the static prediction exactly" in out
    assert validate_file(trace) == []


def test_anonymous_voting_runs(capsys):
    _run_example("anonymous_voting")
    out = capsys.readouterr().out
    assert "result verified against the honest ballots." in out


def test_pseudosig_broadcast_runs(capsys):
    _run_example("pseudosig_broadcast")
    out = capsys.readouterr().out
    assert "agreement held every time" in out


def test_dining_cryptographers_runs(capsys):
    module_path = EXAMPLES / "dining_cryptographers.py"
    spec = importlib.util.spec_from_file_location("example_dc", module_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.classic_dcnet_with_jammer()
    module.anonchan_with_jammer()
    out = capsys.readouterr().out
    assert "disqualified: parties [3]" in out


@pytest.mark.slow
def test_scaling_study_runs(capsys):
    _run_example("scaling_study")
    out = capsys.readouterr().out
    assert "rounds and broadcasts are flat in n" in out
