"""Shared Hypothesis strategies for the test suite.

One place for the generators every property-based test needs — seeds,
field values, permutations, sparse dart vectors, and protocol
parameters — so individual test modules stop growing ad-hoc copies.
Import from tests as::

    from tests.strategies import seeds, sparse_vectors, anonchan_params

(``tests`` is a package; pytest puts the repo root on ``sys.path``).
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core import AnonChanParams, SparseVector
from repro.fields import gf2k

#: Generic rng seeds (also used for Permutation.random drawing).
seeds = st.integers(min_value=0, max_value=10**9)

#: Alias kept for the permutation tests' vocabulary.
perm_seed = seeds

#: Permutation / vector lengths small enough for exhaustive checks.
perm_len = st.integers(min_value=1, max_value=40)

#: Raw values of GF(2^16) elements.
values16 = st.integers(min_value=0, max_value=2**16 - 1)


def field_elements(kappa: int = 16):
    """Elements of GF(2^kappa), as a Hypothesis strategy."""
    f = gf2k(kappa)
    return st.builds(f, st.integers(min_value=0, max_value=f.order - 1))


@st.composite
def sparse_vectors(draw, length: int = 32, max_entries: int = 5):
    """Sparse tagged vectors over GF(2^16) with up to ``max_entries``."""
    f = gf2k(16)
    count = draw(st.integers(min_value=0, max_value=max_entries))
    seed = draw(seeds)
    rng = random.Random(seed)
    entries = {
        k: (rng.randrange(f.order), rng.randrange(f.order))
        for k in rng.sample(range(length), count)
    }
    return SparseVector(f, length, entries)


@st.composite
def anonchan_params(
    draw,
    max_n: int = 5,
    max_d: int = 6,
    max_checks: int = 4,
    kappa: int = 16,
):
    """Valid laptop-scale :class:`AnonChanParams` across all axes."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    t = draw(st.integers(min_value=1, max_value=(n - 1) // 2))
    d = draw(st.integers(min_value=2, max_value=max_d))
    checks = draw(st.integers(min_value=1, max_value=max_checks))
    margin = draw(st.integers(min_value=4, max_value=8))
    ell = margin * (n - 1) * d
    return AnonChanParams(
        n=n, t=t, kappa=kappa, ell=ell, d=d, num_checks=checks
    )
