"""Failure-injection tests for AnonChan.

The model's convention (paper §2): missing or malformed messages are
replaced with defaults.  These tests inject crashes, message drops,
garbage payloads and adaptive corruption into full protocol runs and
check the guarantees for the *remaining honest* parties.
"""

import random

import pytest

from repro.core import (
    AnonChan,
    honest_input_multiset,
    reliability_holds,
    scaled_parameters,
)
from repro.network import (
    Adversary,
    RoundOutput,
    SilentAdversary,
    TamperingAdversary,
    run_protocol,
)
from repro.vss import IdealVSS


@pytest.fixture(scope="module")
def params():
    return scaled_parameters(n=4, d=6, num_checks=3, kappa=16)


@pytest.fixture(scope="module")
def vss(params):
    return IdealVSS(params.field, params.n, params.t)


def _messages(params):
    return {i: params.field(100 + i) for i in range(params.n)}


def _protocol_run(params, vss, adversary_builder, seed=0):
    protocol = AnonChan(params, vss, receiver=0)
    session = vss.new_session(random.Random(seed))
    msgs = _messages(params)

    def prog(pid):
        return protocol.party_program(
            pid, session, msgs[pid], random.Random(seed * 101 + pid)
        )

    programs = {pid: prog(pid) for pid in range(params.n)}
    adversary = adversary_builder(prog)
    return run_protocol(programs, adversary=adversary), msgs


class TestCrashFaults:
    def test_fully_silent_party(self, params, vss):
        result, msgs = _protocol_run(
            params, vss, lambda prog: SilentAdversary({3}), seed=1
        )
        out = result.outputs[0]
        assert 3 not in out.vss_qualified  # never shared: disqualified
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert reliability_holds(x, out.output)

    def test_crash_after_sharing(self, params, vss):
        """A party that shares honestly then goes silent: its message is
        still delivered (shares of its vector live with everyone)."""

        def builder(prog):
            def tamper(pid, view, out):
                # Stay honest through the share phase (round 0), then crash.
                if view.round_index >= 1:
                    return RoundOutput.silent()
                return out

            return TamperingAdversary({3}, {3: prog(3)}, tamper)

        result, msgs = _protocol_run(params, vss, builder, seed=2)
        out = result.outputs[0]
        assert 3 in out.vss_qualified
        # The crashed party's vector was committed; the sum still
        # carries its message.
        x = honest_input_multiset([msgs[i] for i in range(4)])
        assert reliability_holds(x, out.output)

    def test_crash_before_transfer_to_receiver(self, params, vss):
        """Crashing just before the private transfer removes only one
        share of the sum; t+1 honest shares reconstruct regardless."""
        last_round = vss.cost.share_rounds + 4  # the transfer round

        def builder(prog):
            def tamper(pid, view, out):
                if view.round_index >= last_round:
                    return RoundOutput.silent()
                return out

            return TamperingAdversary({2}, {2: prog(2)}, tamper)

        result, msgs = _protocol_run(params, vss, builder, seed=3)
        out = result.outputs[0]
        x = honest_input_multiset([msgs[i] for i in range(4)])
        assert reliability_holds(x, out.output)


class TestGarbageInjection:
    def test_garbage_payloads_in_every_round(self, params, vss):
        """A corrupted party replaces every payload with junk."""

        def builder(prog):
            def tamper(pid, view, out):
                return RoundOutput(
                    private={j: "garbage" for j in range(params.n) if j != pid},
                    broadcast=None,
                )

            return TamperingAdversary({3}, {3: prog(3)}, tamper)

        result, msgs = _protocol_run(params, vss, builder, seed=4)
        out = result.outputs[0]
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert reliability_holds(x, out.output)
        assert sum(out.output.values()) <= params.n

    def test_random_message_drops(self, params, vss):
        """The corrupted party drops each outgoing payload w.p. 1/2."""
        drop_rng = random.Random(99)

        def builder(prog):
            def tamper(pid, view, out):
                kept = {
                    j: p
                    for j, p in out.private.items()
                    if drop_rng.random() < 0.5
                }
                return RoundOutput(private=kept, broadcast=out.broadcast)

            return TamperingAdversary({1}, {1: prog(1)}, tamper)

        result, msgs = _protocol_run(params, vss, builder, seed=5)
        out = result.outputs[0]
        x = honest_input_multiset([msgs[i] for i in (0, 2, 3)])
        assert reliability_holds(x, out.output)


class TestAdaptiveCorruption:
    def test_mid_protocol_takeover(self, params, vss):
        """An adaptive adversary corrupting a party mid-run gains its
        future messages (here: silences it); the channel still delivers
        the remaining honest messages and |Y| <= n."""

        class Adaptive(Adversary):
            def maybe_corrupt(self, round_index, total, used):
                if round_index == 3 and used == 0:
                    return {2}
                return set()

        result, msgs = _protocol_run(
            params, vss, lambda prog: Adaptive(set()), seed=6
        )
        out = result.outputs[0]
        x = honest_input_multiset([msgs[i] for i in (0, 1, 3)])
        assert reliability_holds(x, out.output)
        assert sum(out.output.values()) <= params.n


class TestReceiverFaults:
    def test_receiver_crash_leaves_others_consistent(self, params, vss):
        """If P* crashes, non-receivers still terminate and agree on
        PASS (they produce no multiset — only P* does)."""
        result, _ = _protocol_run(
            params, vss, lambda prog: SilentAdversary({0}), seed=7
        )
        passes = [result.outputs[p].passed for p in (1, 2, 3)]
        assert passes[0] == passes[1] == passes[2]
