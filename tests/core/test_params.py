"""Tests for AnonChan parameter selection."""

import pytest

from repro.core import AnonChanParams, paper_parameters, scaled_parameters
from repro.core.params import reliability_failure_bound


class TestPaperParameters:
    def test_formulas(self):
        """The exact choices in the proof of Theorem 1 (kappa raised to
        the minimum that can encode indices in [l] as field elements)."""
        p = paper_parameters(n=5)
        assert p.kappa >= 2 * 5  # the paper's minimum
        assert 2**p.kappa > p.ell  # the encodability raise
        assert p.d == 5**4 * p.kappa
        assert p.ell == 4 * 5**6 * p.kappa
        assert p.num_checks == p.kappa
        assert p.t == 2

    def test_explicit_kappa_not_raised(self):
        p = paper_parameters(n=3, kappa=20)
        assert p.kappa == 20

    def test_meets_paper_constraints(self):
        for n in (3, 5, 7):
            assert paper_parameters(n).meets_paper_constraints()

    def test_collision_budget_identity(self):
        """n^2 (d^2/l + C d) == d/2 exactly for the paper's choices."""
        p = paper_parameters(n=4)
        c = 1.0 / (4 * p.n**2)
        budget = p.n**2 * (p.d**2 / p.ell + c * p.d)
        assert budget == pytest.approx(p.d / 2)

    def test_tail_exponent(self):
        """C^2 d == kappa/16 (which is Omega(kappa))."""
        p = paper_parameters(n=6)
        c = 1.0 / (4 * p.n**2)
        assert c * c * p.d == pytest.approx(p.kappa / 16)

    def test_explicit_kappa_and_t(self):
        p = paper_parameters(n=3, t=1, kappa=17)
        assert p.t == 1
        assert p.kappa == 17


class TestScaledParameters:
    def test_default_margin(self):
        p = scaled_parameters(n=5, d=8)
        assert p.ell == 8 * 4 * 8
        assert p.expected_collisions_per_party() == pytest.approx(8 / 8)

    def test_does_not_claim_paper_constraints(self):
        assert not scaled_parameters(n=5).meets_paper_constraints()

    def test_threshold_count(self):
        assert scaled_parameters(n=4, d=8).threshold_count == 4
        assert scaled_parameters(n=4, d=7).threshold_count == 4

    def test_values_accounting(self):
        p = scaled_parameters(n=4, d=6, num_checks=3)
        assert p.values_per_dealer == 2 * p.ell + 3 * (3 * p.ell + 6) + 1
        assert p.values_receiver == 4 * p.ell

    def test_cheater_survival_bound(self):
        assert scaled_parameters(n=4, num_checks=6).cheater_survival_bound() == 2**-6


class TestSharingBackend:
    def test_default_is_auto(self):
        assert scaled_parameters(n=4).sharing_backend == "auto"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            scaled_parameters(n=4, sharing_backend="gpu")

    def test_backend_passed_through(self):
        assert (
            scaled_parameters(n=4, sharing_backend="scalar").sharing_backend
            == "scalar"
        )
        assert (
            paper_parameters(3, sharing_backend="vectorized").sharing_backend
            == "vectorized"
        )


class TestValidation:
    def test_t_too_large(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=4, t=2, kappa=16, ell=64, d=4, num_checks=4)

    def test_d_exceeds_ell(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=4, t=1, kappa=16, ell=4, d=8, num_checks=4)

    def test_too_few_challenge_bits(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=4, t=1, kappa=4, ell=64, d=4, num_checks=8)

    def test_field_too_small_for_vector(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=4, t=1, kappa=4, ell=64, d=4, num_checks=2)

    def test_single_party_rejected(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=1, t=0, kappa=16, ell=64, d=4, num_checks=4)

    def test_zero_checks_rejected(self):
        with pytest.raises(ValueError):
            AnonChanParams(n=4, t=1, kappa=16, ell=64, d=4, num_checks=0)


class TestReliabilityBound:
    def test_bound_shrinks_with_ell(self):
        loose = scaled_parameters(n=5, d=16, margin=4)
        tight = scaled_parameters(n=5, d=16, margin=64)
        assert reliability_failure_bound(tight) <= reliability_failure_bound(loose)

    def test_bound_in_unit_interval(self):
        for n in (3, 5, 9):
            b = reliability_failure_bound(scaled_parameters(n=n))
            assert 0.0 <= b <= 1.0

    def test_paper_parameters_negligible(self):
        # n=3 auto-raises kappa to 16; the dominating term is the tag
        # collision bound n^2 / 2^kappa ~ 1.4e-4, shrinking with kappa.
        b16 = reliability_failure_bound(paper_parameters(n=3))
        b24 = reliability_failure_bound(paper_parameters(n=3, kappa=24))
        assert b16 < 1e-3
        assert b24 < b16 / 100
