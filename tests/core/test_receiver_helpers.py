"""Unit tests for receiver-side helpers and misc core utilities."""

from collections import Counter

import pytest

from repro.core import (
    SparseVector,
    extract_output,
    honest_input_multiset,
    non_malleability_shape_holds,
    reliability_holds,
    scaled_parameters,
    vector_from_opened,
)
from repro.fields import gf2k


@pytest.fixture(scope="module")
def params():
    return scaled_parameters(n=4, d=6, num_checks=3, kappa=16)


class TestExtraction:
    def test_empty_vector(self, params):
        vec = SparseVector(params.field, params.ell, {})
        assert extract_output(params, vec) == Counter()

    def test_exactly_threshold(self, params):
        f = params.field
        k = params.threshold_count
        vec = SparseVector(f, params.ell, {i: (9, 3) for i in range(k)})
        assert extract_output(params, vec) == Counter({9: 1})

    def test_one_below_threshold(self, params):
        f = params.field
        k = params.threshold_count - 1
        vec = SparseVector(f, params.ell, {i: (9, 3) for i in range(k)})
        assert extract_output(params, vec) == Counter()

    def test_distinct_tags_count_separately(self, params):
        """Same message, different tags: two entries in Y."""
        f = params.field
        k = params.threshold_count
        entries = {}
        for i in range(k):
            entries[i] = (9, 1)
        for i in range(k, 2 * k):
            entries[i] = (9, 2)
        vec = SparseVector(f, params.ell, entries)
        assert extract_output(params, vec) == Counter({9: 2})

    def test_vector_from_opened(self, params):
        f = params.field
        xs = [f(0)] * params.ell
        tags = [f(0)] * params.ell
        xs[3], tags[3] = f(7), f(8)
        vec = vector_from_opened(f, xs, tags)
        assert vec.pair_at(3) == (7, 8)
        assert len(vec.entries) == 1


class TestPropertyPredicates:
    def test_reliability_holds(self):
        x = Counter({1: 2, 2: 1})
        assert reliability_holds(x, Counter({1: 2, 2: 1, 3: 1}))
        assert not reliability_holds(x, Counter({1: 1, 2: 1}))
        assert reliability_holds(Counter(), Counter())

    def test_non_malleability_shape(self):
        x = Counter({1: 1})
        assert non_malleability_shape_holds(4, x, Counter({1: 1, 2: 1}))
        assert not non_malleability_shape_holds(1, x, Counter({1: 1, 2: 1}))
        assert not non_malleability_shape_holds(4, x, Counter({2: 1}))

    def test_honest_input_multiset(self):
        f = gf2k(16)
        assert honest_input_multiset([f(5), f(5), f(9)]) == Counter(
            {5: 2, 9: 1}
        )


class TestProgramCombinators:
    def test_map_result(self):
        from repro.network import map_result, run_protocol, silent_rounds

        def prog():
            yield from silent_rounds(1)
            return 21

        result = run_protocol({0: map_result(prog(), lambda v: v * 2)})
        assert result.outputs[0] == 42

    def test_combine_views_validation(self):
        import random

        from repro.vss import IdealVSS, combine_views

        scheme = IdealVSS(gf2k(16), n=4, t=1)
        session = scheme.new_session(random.Random(0))
        z = session.zero_view(0)
        with pytest.raises(ValueError):
            combine_views([])
        with pytest.raises(ValueError):
            combine_views([z, z], [scheme.field(1)])  # length mismatch

    def test_open_program_empty_views_consumes_round(self):
        import random

        from repro.network import run_protocol
        from repro.vss import IdealVSS

        scheme = IdealVSS(gf2k(16), n=3, t=1)
        session = scheme.new_session(random.Random(0))

        def party(pid):
            values = yield from session.open_program(pid, [])
            return values

        result = run_protocol({pid: party(pid) for pid in range(3)})
        assert result.metrics.rounds == 1
        assert all(v == [] for v in result.outputs.values())
