"""Tests for dart vectors and permutations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Permutation, SparseVector, fresh_tag, make_dart_vector
from repro.fields import gf2k


@pytest.fixture(scope="module")
def f():
    return gf2k(16)


class TestPermutation:
    def test_identity(self):
        p = Permutation.identity(5)
        assert [p(k) for k in range(5)] == [0, 1, 2, 3, 4]

    def test_invalid_mapping(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])

    def test_random_is_permutation(self):
        rng = random.Random(0)
        p = Permutation.random(20, rng)
        assert sorted(p.mapping) == list(range(20))

    def test_inverse(self):
        rng = random.Random(1)
        p = Permutation.random(10, rng)
        inv = p.inverse()
        for k in range(10):
            assert inv(p(k)) == k
            assert p(inv(k)) == k

    def test_compose(self):
        rng = random.Random(2)
        p = Permutation.random(8, rng)
        q = Permutation.random(8, rng)
        c = p.compose(q)
        for k in range(8):
            assert c(k) == p(q(k))

    def test_compose_length_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).compose(Permutation.identity(4))

    def test_apply_convention(self, f):
        """Figure 1: w[k] = v[pi(k)]."""
        v = SparseVector(f, 4, {2: (7, 8)})
        pi = Permutation([2, 3, 0, 1])
        w = pi.apply(v)
        for k in range(4):
            assert w.pair_at(k) == v.pair_at(pi(k))

    def test_field_roundtrip(self, f):
        rng = random.Random(3)
        p = Permutation.random(12, rng)
        elements = p.to_field_elements(f)
        assert Permutation.from_field_elements(elements) == p

    def test_from_field_elements_invalid(self, f):
        assert Permutation.from_field_elements([f(0), f(0)]) is None
        assert Permutation.from_field_elements([f(5), f(1)]) is None


class TestSparseVector:
    def test_zero_entries_dropped(self, f):
        v = SparseVector(f, 4, {1: (0, 0), 2: (1, 0)})
        assert v.nonzero_indices() == [2]

    def test_out_of_range(self, f):
        with pytest.raises(ValueError):
            SparseVector(f, 4, {4: (1, 1)})

    def test_out_of_range_error_hides_secret_index(self, f):
        """The failing index is a secret dart position (lint RL203):
        the exception names the bound, never the value."""
        with pytest.raises(ValueError) as err:
            SparseVector(f, 8, {12345: (1, 1)})
        assert "12345" not in str(err.value)
        assert "[0, 8)" in str(err.value)

    def test_add_and_cancellation(self, f):
        """Characteristic 2: equal pairs at the same index cancel."""
        a = SparseVector(f, 8, {1: (5, 6), 2: (7, 8)})
        b = SparseVector(f, 8, {1: (5, 6), 3: (1, 1)})
        s = a + b
        assert s.pair_at(1) == (0, 0)
        assert s.pair_at(2) == (7, 8)
        assert s.pair_at(3) == (1, 1)

    def test_sub_equals_add_in_char2(self, f):
        a = SparseVector(f, 8, {1: (5, 6)})
        b = SparseVector(f, 8, {1: (3, 2), 4: (9, 9)})
        assert (a - b).entries == (a + b).entries

    def test_shape_mismatch(self, f):
        a = SparseVector(f, 8, {})
        b = SparseVector(f, 9, {})
        with pytest.raises(ValueError):
            _ = a + b

    def test_component_roundtrip(self, f):
        v = SparseVector(f, 6, {0: (1, 2), 5: (3, 4)})
        back = SparseVector.from_components(f, v.component(0), v.component(1))
        assert back.entries == v.entries

    def test_component_length_mismatch(self, f):
        with pytest.raises(ValueError):
            SparseVector.from_components(f, [1], [1, 2])

    def test_is_proper(self, f):
        proper = SparseVector(f, 8, {k: (5, 6) for k in (1, 3, 7)})
        assert proper.is_proper(d=3)
        assert not proper.is_proper(d=4)
        improper = SparseVector(f, 8, {1: (5, 6), 3: (5, 7), 7: (5, 6)})
        assert not improper.is_proper(d=3)

    def test_is_zero(self, f):
        assert SparseVector(f, 4, {}).is_zero()
        assert not SparseVector(f, 4, {0: (1, 0)}).is_zero()


class TestDartConstruction:
    def test_make_dart_vector(self, f):
        rng = random.Random(4)
        v = make_dart_vector(f, ell=100, d=7, message=f(42), tag=f(9), rng=rng)
        assert v.is_proper(7)
        assert set(v.entries.values()) == {(42, 9)}

    def test_zero_message_and_tag_rejected(self, f):
        with pytest.raises(ValueError):
            make_dart_vector(f, 10, 2, f(0), f(0), random.Random(0))

    def test_bad_sparseness(self, f):
        with pytest.raises(ValueError):
            make_dart_vector(f, 10, 11, f(1), f(1), random.Random(0))
        with pytest.raises(ValueError):
            make_dart_vector(f, 10, 0, f(1), f(1), random.Random(0))

    def test_fresh_tag_nonzero(self, f):
        rng = random.Random(5)
        assert all(fresh_tag(f, rng).value != 0 for _ in range(100))

    def test_indices_uniform_smoke(self, f):
        """Dart indices cover the range over many draws."""
        rng = random.Random(6)
        seen = set()
        for _ in range(200):
            v = make_dart_vector(f, 20, 3, f(1), f(1), rng)
            seen.update(v.nonzero_indices())
        assert seen == set(range(20))


@settings(max_examples=50)
@given(
    length=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10**9),
)
def test_permutation_apply_preserves_multiset(length, seed):
    f = gf2k(16)
    rng = random.Random(seed)
    entries = {
        k: (rng.randrange(1, 100), rng.randrange(1, 100))
        for k in rng.sample(range(length), min(length, 3))
    }
    v = SparseVector(f, length, entries)
    p = Permutation.random(length, rng)
    w = p.apply(v)
    assert sorted(w.entries.values()) == sorted(v.entries.values())
    assert len(w.entries) == len(v.entries)


@settings(max_examples=50)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_permute_then_subtract_is_zero(seed):
    """The b=0 branch of cut-and-choose on honest material."""
    f = gf2k(16)
    rng = random.Random(seed)
    v = make_dart_vector(f, 24, 4, f(3), f(5), rng)
    pi = Permutation.random(24, rng)
    w = pi.apply(v)
    # u[k] = v[pi(k)] - w[k] == 0 for all k
    u_entries = {}
    for k in range(24):
        a = v.pair_at(pi(k))
        b = w.pair_at(k)
        if a != b:
            u_entries[k] = (a, b)
    assert not u_entries
