"""Tests for the round-schedule tool and the CLI."""

import pytest

from repro.core import scaled_parameters
from repro.core.trace import (
    format_schedule,
    round_schedule,
    total_broadcast_rounds,
    total_rounds,
)
from repro.vss import BGW_COST, GGOR13_COST, RB89_COST


@pytest.fixture(scope="module")
def params():
    return scaled_parameters(n=5)


class TestSchedule:
    def test_length_matches_formula(self, params):
        for cost in (RB89_COST, GGOR13_COST, BGW_COST):
            schedule = round_schedule(params, cost)
            assert len(schedule) == total_rounds(params, cost)
            assert len(schedule) == cost.share_rounds + 5

    def test_broadcast_rounds_only_in_sharing(self, params):
        schedule = round_schedule(params, GGOR13_COST)
        broadcasting = [r for r in schedule if r.uses_broadcast]
        assert len(broadcasting) == 2 == total_broadcast_rounds(params, GGOR13_COST)
        assert all(r.phase.startswith("step 1") for r in broadcasting)

    def test_indices_sequential(self, params):
        schedule = round_schedule(params, RB89_COST)
        assert [r.index for r in schedule] == list(range(len(schedule)))

    def test_schedule_matches_measured_execution(self, params):
        """The static schedule agrees with the simulator's accounting."""
        from repro.core import run_anonchan
        from repro.vss import IdealVSS

        small = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(small.field, small.n, small.t, cost=GGOR13_COST)
        messages = {i: small.field(10 + i) for i in range(4)}
        result = run_anonchan(small, vss, messages, seed=0)
        assert result.metrics.rounds == total_rounds(small, GGOR13_COST)
        assert result.metrics.broadcast_rounds == total_broadcast_rounds(
            small, GGOR13_COST
        )

    def test_format_contains_key_facts(self, params):
        text = format_schedule(params, GGOR13_COST)
        assert "26 rounds" in text
        assert "2 broadcast rounds" in text
        assert "private transfer" in text


class TestCLI:
    def test_rounds_command(self, capsys):
        from repro.__main__ import main

        assert main(["rounds"]) == 0
        out = capsys.readouterr().out
        assert "GGOR14 (this paper)" in out
        assert "Zhang11" in out

    def test_params_command(self, capsys):
        from repro.__main__ import main

        assert main(["params", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "paper-exact" in out
        assert "VSS sharings" in out

    def test_schedule_command(self, capsys):
        from repro.__main__ import main

        assert main(["schedule", "-n", "4", "--vss", "RB89"]) == 0
        out = capsys.readouterr().out
        assert "12 rounds" in out  # 7 + 5

    def test_demo_command(self, capsys):
        from repro.__main__ import main

        assert main(["demo", "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "receiver's multiset Y" in out
        assert "100" in out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
