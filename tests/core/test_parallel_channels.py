"""Tests for parallel composition of full AnonChan instances."""

import pytest

from repro.core import honest_input_multiset, scaled_parameters
from repro.core.parallel_channels import run_parallel_channels
from repro.vss import GGOR13_COST, IdealVSS


@pytest.fixture(scope="module")
def params():
    # Wider margin than the default test parameters: these tests assert
    # full delivery in *every* concurrent session, so the per-sender
    # collision-loss probability must be well below one in a hundred.
    return scaled_parameters(n=4, d=8, num_checks=3, kappa=16, margin=12)


def _messages(params, base):
    return {i: params.field(base + i) for i in range(params.n)}


class TestParallelComposition:
    def test_two_sessions_same_rounds_as_one(self, params):
        """The §2/§4 composition: k instances cost one instance's rounds."""
        vss = IdealVSS(params.field, params.n, params.t)
        sessions = {
            "a": (0, _messages(params, 100)),
            "b": (1, _messages(params, 200)),
        }
        result = run_parallel_channels(params, vss, sessions, seed=1)
        assert result.metrics.rounds == vss.cost.share_rounds + 5
        out0 = result.outputs[0]["a"]
        out1 = result.outputs[1]["b"]
        assert out0.output == honest_input_multiset(
            list(sessions["a"][1].values())
        )
        assert out1.output == honest_input_multiset(
            list(sessions["b"][1].values())
        )

    def test_every_party_a_receiver(self, params):
        """The pseudosignature setup's shape: n sessions, one receiver
        each, still one sharing phase and two broadcasts (GGOR13)."""
        vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
        sessions = {
            f"to-{r}": (r, _messages(params, 100 * (r + 1)))
            for r in range(params.n)
        }
        result = run_parallel_channels(params, vss, sessions, seed=2)
        assert result.metrics.rounds == 21 + 5
        assert result.metrics.broadcast_rounds == 2
        for r in range(params.n):
            out = result.outputs[r][f"to-{r}"]
            assert out.output == honest_input_multiset(
                list(sessions[f"to-{r}"][1].values())
            )

    def test_sessions_are_independent(self, params):
        """Fresh tags per session: identical message sets do not merge."""
        vss = IdealVSS(params.field, params.n, params.t)
        msgs = _messages(params, 300)
        sessions = {"x": (0, msgs), "y": (0, msgs)}
        result = run_parallel_channels(params, vss, sessions, seed=3)
        out = result.outputs[0]
        assert out["x"].output == out["y"].output == honest_input_multiset(
            list(msgs.values())
        )

    def test_empty_sessions_rejected(self, params):
        vss = IdealVSS(params.field, params.n, params.t)
        with pytest.raises(ValueError):
            run_parallel_channels(params, vss, {}, seed=0)

    def test_attack_in_one_session_does_not_leak(self, params):
        """A jammer corrupting session 'a' is disqualified there; we run
        it via the adversary corrupting the party entirely, so it is
        silent in both sessions -> excluded from both PASS sets,
        delivery of the honest messages unaffected."""
        from repro.network import SilentAdversary

        vss = IdealVSS(params.field, params.n, params.t)
        sessions = {
            "a": (0, _messages(params, 100)),
            "b": (1, _messages(params, 200)),
        }
        result = run_parallel_channels(
            params, vss, sessions, seed=4, adversary=SilentAdversary({3})
        )
        out_a = result.outputs[0]["a"]
        out_b = result.outputs[1]["b"]
        assert 3 not in out_a.vss_qualified
        assert 3 not in out_b.vss_qualified
        for out, base in ((out_a, 100), (out_b, 200)):
            for i in range(3):
                assert out.output[base + i] >= 1
