"""Integration tests for protocol AnonChan (Theorem 1's properties)."""

import random

import pytest

from repro.core import (
    AnonChan,
    honest_input_multiset,
    non_malleability_shape_holds,
    reliability_holds,
    run_anonchan,
    scaled_parameters,
)
from repro.core.adversaries import (
    dependent_input_material,
    guessing_cheater_material,
    jamming_material,
    targeted_material,
    zero_material,
)
from repro.network import PassiveAdversary
from repro.vss import GGOR13_COST, BGWVSS, IdealVSS


@pytest.fixture(scope="module")
def params():
    return scaled_parameters(n=4, d=6, num_checks=3, kappa=16)


@pytest.fixture(scope="module")
def vss(params):
    return IdealVSS(params.field, params.n, params.t)


def _messages(params, values=None):
    f = params.field
    if values is None:
        values = [100 + i for i in range(params.n)]
    return {i: f(v) for i, v in enumerate(values)}


class TestHonestExecution:
    def test_all_messages_delivered(self, params, vss):
        msgs = _messages(params)
        res = run_anonchan(params, vss, msgs, seed=1)
        y = res.outputs[0].output
        x = honest_input_multiset(list(msgs.values()))
        assert y == x

    def test_round_complexity(self, params, vss):
        """AnonChan == one VSS share phase + 5 fixed rounds (E1)."""
        res = run_anonchan(params, vss, _messages(params), seed=2)
        assert res.metrics.rounds == vss.cost.share_rounds + 5

    def test_broadcast_rounds_equal_vss_broadcasts(self, params):
        """The reduction is broadcast-round-preserving: with the GGOR13
        profile the whole protocol uses exactly 2 broadcast rounds (E2)."""
        vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
        res = run_anonchan(params, vss, _messages(params), seed=3)
        assert res.metrics.broadcast_rounds == 2
        assert res.metrics.rounds == 21 + 5

    def test_duplicate_messages_keep_multiplicity(self, params, vss):
        """Distinct random tags separate equal honest messages."""
        msgs = _messages(params, [7, 7, 7, 9])
        res = run_anonchan(params, vss, msgs, seed=4)
        y = res.outputs[0].output
        assert y[7] == 3
        assert y[9] == 1

    def test_all_parties_agree_on_pass_and_challenge(self, params, vss):
        res = run_anonchan(params, vss, _messages(params), seed=5)
        outs = list(res.outputs.values())
        assert all(o.passed == outs[0].passed for o in outs)
        assert all(o.challenge == outs[0].challenge for o in outs)

    def test_non_receiver_learns_no_output(self, params, vss):
        res = run_anonchan(params, vss, _messages(params), seed=6)
        for pid, out in res.outputs.items():
            if pid != 0:
                assert out.output is None

    def test_other_receiver(self, params, vss):
        res = run_anonchan(params, vss, _messages(params), receiver=2, seed=7)
        assert res.outputs[2].output == honest_input_multiset(
            list(_messages(params).values())
        )
        assert res.outputs[0].output is None


class TestSharingBackends:
    """The backend knob changes execution speed, never protocol behavior."""

    def test_backends_produce_identical_executions(self):
        results = {}
        for backend in ("scalar", "vectorized"):
            params = scaled_parameters(
                n=4, d=6, num_checks=3, kappa=16, sharing_backend=backend
            )
            vss = IdealVSS(params.field, params.n, params.t)
            res = run_anonchan(params, vss, _messages(params), seed=11)
            results[backend] = (
                res.outputs[0].output,
                {pid: out.passed for pid, out in res.outputs.items()},
                {pid: out.challenge for pid, out in res.outputs.items()},
                res.metrics.rounds,
            )
        assert results["scalar"] == results["vectorized"]
        assert results["scalar"][0] is not None

    def test_explicit_vss_backend_not_clobbered_by_auto(self):
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        assert params.sharing_backend == "auto"
        vss = IdealVSS(params.field, params.n, params.t, backend="scalar")
        res = run_anonchan(params, vss, _messages(params), seed=12)
        assert res.outputs[0].output == honest_input_multiset(
            list(_messages(params).values())
        )


class TestAttacks:
    def test_jamming_is_caught(self, params, vss):
        """The classic DC-net jammer is disqualified; reliability holds."""
        rng = random.Random(0)
        msgs = _messages(params)
        res = run_anonchan(
            params,
            vss,
            msgs,
            seed=10,
            corrupt_materials={3: jamming_material(params, rng)},
        )
        out = res.outputs[0]
        assert 3 not in out.passed
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert reliability_holds(x, out.output)

    def test_guessing_cheater_wrong_guesses_disqualified(self, params, vss):
        f = params.field
        msgs = _messages(params)
        rng = random.Random(1)
        material = guessing_cheater_material(
            params, [f(1), f(2)], rng, bit_guesses=[0] * params.num_checks
        )
        res = run_anonchan(
            params, vss, msgs, seed=11, corrupt_materials={3: material}
        )
        out = res.outputs[0]
        bits = [out.challenge.value >> j & 1 for j in range(params.num_checks)]
        if any(bits):  # at least one bit-1 check ran: cheater is caught
            assert 3 not in out.passed
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert reliability_holds(x, out.output)

    def test_guessing_cheater_right_guesses_survives(self, params, vss):
        """Claim 1 is *tight*: guessing every challenge bit wins.

        We run once to learn the challenge (which is independent of the
        copies w_j), then rebuild the same cheater with perfect guesses.
        """
        f = params.field
        msgs = _messages(params)
        seed = 12
        first = run_anonchan(
            params,
            vss,
            msgs,
            seed=seed,
            corrupt_materials={
                3: guessing_cheater_material(
                    params, [f(1), f(2)], random.Random(2),
                    bit_guesses=[0] * params.num_checks,
                )
            },
        )
        bits = [
            first.outputs[0].challenge.value >> j & 1
            for j in range(params.num_checks)
        ]
        second = run_anonchan(
            params,
            vss,
            msgs,
            seed=seed,
            corrupt_materials={
                3: guessing_cheater_material(
                    params, [f(1), f(2)], random.Random(2), bit_guesses=bits
                )
            },
        )
        out = second.outputs[0]
        assert out.challenge == first.outputs[0].challenge
        assert 3 in out.passed  # the improper vector survived this time

    def test_zero_vector_passes_and_is_harmless(self, params, vss):
        rng = random.Random(3)
        msgs = _messages(params)
        res = run_anonchan(
            params,
            vss,
            msgs,
            seed=13,
            corrupt_materials={3: zero_material(params, rng)},
        )
        out = res.outputs[0]
        assert 3 in out.passed
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert out.output == x  # nothing added, nothing lost

    def test_targeted_proper_vector_passes(self, params, vss):
        """A proper vector always passes the proof, wherever its darts sit."""
        rng = random.Random(4)
        f = params.field
        msgs = _messages(params)
        material = targeted_material(
            params, f(55), list(range(params.d)), rng
        )
        res = run_anonchan(
            params, vss, msgs, seed=14, corrupt_materials={3: material}
        )
        out = res.outputs[0]
        assert 3 in out.passed
        assert out.output[55] == 1

    def test_non_malleability_shape(self, params, vss):
        """|Y| <= n and X ⊆ Y under a value-replaying adversary."""
        rng = random.Random(5)
        msgs = _messages(params)
        material = dependent_input_material(params, params.field(101), rng)
        res = run_anonchan(
            params, vss, msgs, seed=15, corrupt_materials={3: material}
        )
        out = res.outputs[0]
        x = honest_input_multiset([msgs[i] for i in range(3)])
        assert non_malleability_shape_holds(params.n, x, out.output)
        # The adversary replayed the *known* value 101: allowed, and it
        # shows up as an extra copy.
        assert out.output[101] == 2

    def test_corrupt_receiver_execution_terminates(self, params, vss):
        """With a passively corrupted P*, honest parties still finish and
        the (adversarial) receiver still gets the right multiset —
        anonymity, not correctness, is what it attacks."""
        msgs = _messages(params)
        protocol = AnonChan(params, vss, receiver=0)
        session = vss.new_session(random.Random(99))

        def prog(pid):
            return protocol.party_program(
                pid, session, msgs[pid], random.Random(1000 + pid)
            )

        programs = {pid: prog(pid) for pid in range(params.n)}
        adv = PassiveAdversary({0}, {0: prog(0)})
        from repro.network import run_protocol

        res = run_protocol(programs, adversary=adv)
        for pid in range(1, params.n):
            assert res.outputs[pid].output is None
        assert adv.results[0].output == honest_input_multiset(
            list(msgs.values())
        )


class TestWithRealVSS:
    def test_end_to_end_over_bgw(self):
        """AnonChan over the fully executable perfect VSS (t < n/3)."""
        params = scaled_parameters(n=4, t=1, d=4, num_checks=2, kappa=16, margin=6)
        vss = BGWVSS(params.field, params.n, params.t)
        msgs = {i: params.field(200 + i) for i in range(4)}
        res = run_anonchan(params, vss, msgs, seed=20)
        out = res.outputs[0]
        assert out.output == honest_input_multiset(list(msgs.values()))
        # BGW fast path: 3 share rounds + 5 protocol rounds.
        assert res.metrics.rounds == 3 + 5
        assert res.metrics.broadcast_rounds == 0

    def test_bgw_jamming_caught(self):
        params = scaled_parameters(n=4, t=1, d=4, num_checks=3, kappa=16, margin=6)
        vss = BGWVSS(params.field, params.n, params.t)
        msgs = {i: params.field(200 + i) for i in range(4)}
        rng = random.Random(6)
        res = run_anonchan(
            params,
            vss,
            msgs,
            seed=22,
            corrupt_materials={2: jamming_material(params, rng, density=0.3)},
        )
        out = res.outputs[0]
        bits = [out.challenge.value >> j & 1 for j in range(params.num_checks)]
        assert any(bits), "seed chosen so at least one bit-1 check runs"
        assert 2 not in out.passed
        x = honest_input_multiset([msgs[i] for i in (0, 1, 3)])
        assert reliability_holds(x, out.output)


class TestValidation:
    def test_receiver_out_of_range(self, params, vss):
        with pytest.raises(ValueError):
            AnonChan(params, vss, receiver=99)

    def test_vss_mismatch(self, params):
        from repro.fields import gf2k

        wrong = IdealVSS(gf2k(16), params.n + 1, params.t)
        with pytest.raises(ValueError):
            AnonChan(params, wrong)

    def test_missing_message(self, params, vss):
        protocol = AnonChan(params, vss)
        session = vss.new_session(random.Random(0))
        prog = protocol.party_program(0, session, None, random.Random(0))
        with pytest.raises(ValueError):
            next(prog)


class TestMinimalConfigurations:
    def test_two_parties_zero_tolerance(self):
        """The smallest legal channel: n=2, t=0.

        At n=2 every honest-honest collision carries the *same* garbage
        pair (x1+x2), so the d/2 threshold needs a wider margin than
        the defaults to keep the collision-overflow probability low.
        """
        params = scaled_parameters(n=2, t=0, d=6, num_checks=2, kappa=16,
                                   margin=16)
        vss = IdealVSS(params.field, 2, 0)
        msgs = {0: params.field(5), 1: params.field(6)}
        res = run_anonchan(params, vss, msgs, seed=30)
        assert res.outputs[0].output == honest_input_multiset(list(msgs.values()))

    def test_three_parties_max_tolerance(self):
        params = scaled_parameters(n=3, d=6, num_checks=3, kappa=16)
        assert params.t == 1
        vss = IdealVSS(params.field, 3, 1)
        msgs = {i: params.field(7 + i) for i in range(3)}
        res = run_anonchan(params, vss, msgs, seed=31)
        assert res.outputs[0].output == honest_input_multiset(list(msgs.values()))
