"""Property-based tests (hypothesis) for the core data structures."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnonChanParams,
    DealerLayout,
    Permutation,
    SparseVector,
    challenge_bits,
    extract_output,
    honest_material,
)
from repro.fields import gf2k

from tests.strategies import perm_len, perm_seed, sparse_vectors


def _params(n=4, ell=24, d=4, checks=3):
    return AnonChanParams(n=n, t=1, kappa=16, ell=ell, d=d, num_checks=checks)


# -- permutations ------------------------------------------------------------


@settings(max_examples=60)
@given(length=perm_len, seed=perm_seed)
def test_permutation_group_inverse(length, seed):
    p = Permutation.random(length, random.Random(seed))
    assert p.compose(p.inverse()) == Permutation.identity(length)
    assert p.inverse().compose(p) == Permutation.identity(length)


@settings(max_examples=60)
@given(length=perm_len, s1=perm_seed, s2=perm_seed)
def test_permutation_compose_apply_homomorphism(length, s1, s2):
    """(p o q).apply == q.apply then p.apply ... with the paper's
    convention w[k] = v[pi(k)], apply reverses composition order."""
    rng = random.Random(s1 ^ s2)
    p = Permutation.random(length, random.Random(s1))
    q = Permutation.random(length, random.Random(s2))
    f = gf2k(16)
    entries = {
        k: (rng.randrange(1, 100), 1)
        for k in rng.sample(range(length), min(3, length))
    }
    v = SparseVector(f, length, entries)
    lhs = p.compose(q).apply(v)
    rhs = q.apply(p.apply(v))
    assert lhs.entries == rhs.entries


@settings(max_examples=40)
@given(length=perm_len, seed=perm_seed)
def test_permutation_field_encoding_roundtrip(length, seed):
    f = gf2k(16)
    p = Permutation.random(length, random.Random(seed))
    assert Permutation.from_field_elements(p.to_field_elements(f)) == p


# -- sparse vectors (shared strategy from tests.strategies) -------------------


@settings(max_examples=60)
@given(a=sparse_vectors(), b=sparse_vectors(), c=sparse_vectors())
def test_vector_addition_abelian_group(a, b, c):
    assert (a + b).entries == (b + a).entries
    assert ((a + b) + c).entries == (a + (b + c)).entries
    zero = SparseVector(a.field, a.length, {})
    assert (a + zero).entries == a.entries
    assert (a + a).entries == {}  # characteristic 2: self-inverse


@settings(max_examples=60)
@given(v=sparse_vectors(), seed=perm_seed)
def test_permute_preserves_properness(v, seed):
    p = Permutation.random(v.length, random.Random(seed))
    w = p.apply(v)
    d = len(v.entries)
    if d:
        assert v.is_proper(d) == w.is_proper(d)


@settings(max_examples=60)
@given(v=sparse_vectors())
def test_component_roundtrip_property(v):
    back = SparseVector.from_components(
        v.field, v.component(0), v.component(1)
    )
    assert back.entries == v.entries


# -- layout -------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=perm_seed,
    d=st.integers(min_value=2, max_value=5),
    checks=st.integers(min_value=1, max_value=4),
)
def test_layout_roundtrip_property(seed, d, checks):
    """Every committed value is recoverable at its layout offset."""
    params = _params(ell=4 * d + 4, d=d, checks=checks)
    layout = DealerLayout(params)
    rng = random.Random(seed)
    material = honest_material(params, params.field(7), rng)
    secrets = layout.build_secrets(material)
    assert len(secrets) == layout.total
    for k in range(params.ell):
        x, a = material.vector.pair_at(k)
        assert secrets[layout.vec_x(k)].value == x
        assert secrets[layout.vec_a(k)].value == a
    for j in range(checks):
        for k in range(params.ell):
            wx, wa = material.ws[j].pair_at(k)
            assert secrets[layout.w_x(j, k)].value == wx
            assert secrets[layout.w_a(j, k)].value == wa
            assert secrets[layout.perm(j, k)].value == material.perms[j](k)
        for m in range(d):
            assert secrets[layout.idx(j, m)].value == material.index_lists[j][m]


# -- challenge bits ------------------------------------------------------------


@settings(max_examples=60)
@given(
    value=st.integers(min_value=0, max_value=2**16 - 1),
    checks=st.integers(min_value=1, max_value=16),
)
def test_challenge_bits_consistent_with_encoding(value, checks):
    f = gf2k(16)
    bits = challenge_bits(f(value), checks)
    assert len(bits) == checks
    assert all(b in (0, 1) for b in bits)
    reconstructed = sum(b << i for i, b in enumerate(bits))
    assert reconstructed == value & ((1 << checks) - 1)


# -- receiver extraction ---------------------------------------------------------


@settings(max_examples=40)
@given(
    seed=perm_seed,
    copies=st.integers(min_value=1, max_value=8),
)
def test_extraction_threshold_property(seed, copies):
    """A pair enters Y iff it appears at least ceil(d/2) times."""
    params = _params(ell=64, d=6)
    f = params.field
    rng = random.Random(seed)
    indices = rng.sample(range(64), copies)
    vec = SparseVector(f, 64, {k: (55, 7) for k in indices})
    y = extract_output(params, vec)
    if copies >= params.threshold_count:
        assert y[55] == 1
    else:
        assert y[55] == 0


@settings(max_examples=40)
@given(seed=perm_seed)
def test_extraction_ignores_garbage_minority(seed):
    """Sub-threshold collision garbage never enters Y."""
    params = _params(ell=64, d=6)
    f = params.field
    rng = random.Random(seed)
    entries = {}
    # One real message at threshold...
    for k in rng.sample(range(32), params.threshold_count):
        entries[k] = (99, 1)
    # ...plus distinct garbage pairs, one occurrence each.
    for k in rng.sample(range(32, 64), 10):
        entries[k] = (rng.randrange(1, 2**16), rng.randrange(2**16))
    y = extract_output(params, SparseVector(f, 64, entries))
    assert y == Counter({99: 1})
