"""Differential harness: the batched AnonChan hot path ≡ the scalar path.

The protocol rewrite of PR 10 routes the cut-and-choose openings, the
stage-2 difference checks and the step-4 receiver sum through the numpy
view algebra (``diff_offsets_batch`` / ``sum_offsets_batch``) and the
table-free GF(2^k) kernels.  The contract pinned down here is that this
is *purely* an execution-speed change:

- protocol outputs (pass sets, challenge, delivered multiset, round
  accounting) are identical between the ``"scalar"`` and
  ``"vectorized"`` sharing backends, for honest runs and under every
  adversary strategy;
- canonical traces are byte-identical (the batched path sends the same
  payloads in the same rounds);
- the batched VSS view algebra produces views with identical
  ``(terms, value)`` to the generic view-by-view fallbacks, on both
  field substrates (GF(2^k) and prime);
- the dealing rng stream is consumed identically, so seeded executions
  stay reproducible across backends;
- ``REPRO_FORCE_SCALAR=1`` pins ``"auto"`` to the reference path
  without changing any output.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AnonChanParams, run_anonchan, scaled_parameters
from repro.core.adversaries import (
    dependent_input_material,
    guessing_cheater_material,
    jamming_material,
    targeted_material,
    zero_material,
)
from repro.fields import PrimeField, gf2k
from repro.obs import Tracer, canonical_lines
from repro.obs.profiler import OpProfiler
from repro.vss import IdealVSS
from repro.vss.base import VSSSession
from tests.strategies import anonchan_params, seeds

BACKENDS = ("scalar", "vectorized")

#: strategy name -> builder(params, rng) for one corrupted prover's
#: step-1 material.  Each leg of a differential pair rebuilds the
#: material from an identically seeded rng, so the corrupted inputs are
#: bit-identical across backends.
STRATEGIES = {
    "jamming": lambda p, rng: jamming_material(p, rng),
    "guessing-cheater": lambda p, rng: guessing_cheater_material(
        p, [p.field(1), p.field(2)], rng, bit_guesses=[0] * p.num_checks
    ),
    "zero": lambda p, rng: zero_material(p, rng),
    "targeted": lambda p, rng: targeted_material(
        p, p.field(55), list(range(p.d)), rng
    ),
    "dependent-input": lambda p, rng: dependent_input_material(
        p, p.field(101), rng
    ),
}


def _materials(params, strategy, material_seed=777):
    if strategy == "honest":
        return None
    rng = random.Random(material_seed)
    return {params.n - 1: STRATEGIES[strategy](params, rng)}


def _run(params, backend, seed, strategy="honest", trace=False, profiler=None):
    p = replace(params, sharing_backend=backend)
    vss = IdealVSS(p.field, p.n, p.t)
    msgs = {i: p.field(100 + i) for i in range(p.n)}
    tracer = Tracer() if trace else None
    res = run_anonchan(
        p,
        vss,
        msgs,
        seed=seed,
        corrupt_materials=_materials(p, strategy),
        tracer=tracer,
        profiler=profiler,
    )
    return res, tracer


def _summary(res):
    """Everything observable about one execution, in comparable form."""
    return (
        {
            pid: (out.vss_qualified, out.passed, out.challenge.value, out.output)
            for pid, out in res.outputs.items()
        },
        res.metrics.rounds,
        res.metrics.broadcast_rounds,
        res.metrics.field_elements_sent,
    )


def _views_key(views):
    return [(v.terms, v.value) for v in views]


def _drive(program):
    """Run a no-network VSS program generator to completion."""
    try:
        next(program)
        while True:
            program.send(None)
    except StopIteration as stop:
        return stop.value


class TestHypothesisDifferential:
    """Property form: random shapes x seeds x strategies, both backends."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        params=anonchan_params(max_n=4, max_d=4, max_checks=3),
        seed=seeds,
        strategy=st.sampled_from(
            ("honest", "jamming", "guessing-cheater", "zero")
        ),
    )
    def test_outputs_identical(self, params, seed, strategy):
        runs = {
            b: _summary(_run(params, b, seed, strategy)[0]) for b in BACKENDS
        }
        assert runs["scalar"] == runs["vectorized"]

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        params=anonchan_params(max_n=4, max_d=4, max_checks=3, kappa=12),
        seed=seeds,
    )
    def test_outputs_identical_alternate_field(self, params, seed):
        """A second GF(2^k) substrate (k=12: different tables, modulus)."""
        runs = {
            b: _summary(_run(params, b, seed, "jamming")[0]) for b in BACKENDS
        }
        assert runs["scalar"] == runs["vectorized"]


class TestAdversaryTraceIdentity:
    """Canonical traces are byte-identical across backends, per strategy."""

    PARAMS = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES) + ["honest"])
    def test_trace_and_outputs_identical(self, strategy):
        results = {}
        for backend in BACKENDS:
            res, tracer = _run(
                self.PARAMS, backend, seed=42, strategy=strategy, trace=True
            )
            results[backend] = (
                _summary(res),
                canonical_lines(tracer.events),
            )
        assert results["scalar"] == results["vectorized"]

    def test_batched_path_actually_engaged(self):
        """Guard against silent fallback: the vectorized leg must hit the
        batched view algebra (otherwise the differential pair proves
        nothing about the fast path)."""
        prof = OpProfiler()
        _run(self.PARAMS, "vectorized", seed=42, profiler=prof)
        assert prof.total("vss", "combine_batched") > 0
        assert prof.total("vss", "deal_batched") > 0
        assert prof.total("vss", "combine_scalar_fallback") == 0

    def test_scalar_path_attribution(self):
        """The scalar leg accounts through the *_scalar_fallback markers."""
        prof = OpProfiler()
        _run(self.PARAMS, "scalar", seed=42, profiler=prof)
        assert prof.total("vss", "combine_scalar_fallback") > 0
        assert prof.total("vss", "combine_batched") == 0
        assert prof.total("vss", "deal_batched") == 0


class TestOddShapes:
    """Degenerate geometries must agree between the paths too."""

    def test_ell_1_single_dart(self):
        params = AnonChanParams(n=2, t=0, kappa=16, ell=1, d=1, num_checks=2)
        runs = {b: _summary(_run(params, b, seed=3)[0]) for b in BACKENDS}
        assert runs["scalar"] == runs["vectorized"]

    def test_single_prover_pair(self):
        """n=2: exactly one non-receiver prover feeds the step-4 sum."""
        params = scaled_parameters(n=2, t=0, d=6, num_checks=2, kappa=16,
                                   margin=16)
        for strategy in ("honest", "jamming"):
            runs = {
                b: _summary(_run(params, b, seed=30, strategy=strategy)[0])
                for b in BACKENDS
            }
            assert runs["scalar"] == runs["vectorized"]

    def test_all_nonreceiver_provers_disqualified(self):
        """Every prover but the receiver fails cut-and-choose (seed chosen
        so every jamming vector is caught): the step-4 sum degenerates to
        the receiver's own batch only."""
        params = scaled_parameters(n=3, d=4, num_checks=3, kappa=16)
        results = {}
        for backend in BACKENDS:
            p = replace(params, sharing_backend=backend)
            vss = IdealVSS(p.field, p.n, p.t)
            mats = {
                i: jamming_material(p, random.Random(100 + i))
                for i in (1, 2)
            }
            res = run_anonchan(
                p,
                vss,
                {i: p.field(10 + i) for i in range(3)},
                seed=0,
                corrupt_materials=mats,
            )
            assert res.outputs[0].passed == frozenset({0})
            results[backend] = _summary(res)
        assert results["scalar"] == results["vectorized"]


class TestRngStreamIdentity:
    """Batched dealing consumes the dealer rng exactly like the scalar path."""

    @pytest.mark.parametrize(
        "field", [gf2k(16), gf2k(12), PrimeField(65521)],
        ids=["gf2^16", "gf2^12", "prime65521"],
    )
    def test_session_dealing_stream_and_views(self, field):
        outcomes = {}
        for mode in ("scalar", "vectorized"):
            vss = IdealVSS(field, 4, 1, backend=mode)
            session = vss.new_session(random.Random(0))
            rng = random.Random(12345)
            secrets = [field(i % field.order) for i in range(100)]
            batch = _drive(
                session.share_program(0, 0, secrets, rng, count=100)
            )
            outcomes[mode] = (rng.getstate(), _views_key(batch.views))
        assert outcomes["scalar"] == outcomes["vectorized"]


class TestViewAlgebraBothSubstrates:
    """The batched diff/sum produce views identical to the generic path,
    on GF(2^k) (subtraction == addition) and prime (true negation)."""

    @pytest.mark.parametrize(
        "field", [gf2k(12), PrimeField(65521)], ids=["gf2^12", "prime65521"]
    )
    def test_diff_offsets_matches_generic(self, field):
        session, batch, _ = self._session_with_batches(field)
        offs_a = list(range(0, 64))
        offs_b = list(range(16, 80))
        fast = session.diff_offsets_batch(batch, offs_a, offs_b)
        slow = VSSSession.diff_offsets_batch(session, batch, offs_a, offs_b)
        assert _views_key(fast) == _views_key(slow)

    @pytest.mark.parametrize(
        "field", [gf2k(12), PrimeField(65521)], ids=["gf2^12", "prime65521"]
    )
    def test_diff_same_offset_cancels(self, field):
        """a - a: terms cancel to () and the value is 0, on both paths."""
        session, batch, _ = self._session_with_batches(field)
        offs = [5] * 70
        fast = session.diff_offsets_batch(batch, offs, offs)
        slow = VSSSession.diff_offsets_batch(session, batch, offs, offs)
        assert _views_key(fast) == _views_key(slow)
        assert all(v.terms == () and v.value == 0 for v in fast)

    @pytest.mark.parametrize(
        "field", [gf2k(12), PrimeField(65521)], ids=["gf2^12", "prime65521"]
    )
    def test_sum_offsets_matches_generic(self, field):
        session, batch_a, batch_b = self._session_with_batches(field)
        cols = [list(range(64)), list(reversed(range(64)))]
        fast = session.sum_offsets_batch([batch_a, batch_b], cols)
        slow = VSSSession.sum_offsets_batch(
            session, [batch_a, batch_b], cols
        )
        assert _views_key(fast) == _views_key(slow)

    @pytest.mark.parametrize(
        "field", [gf2k(12), PrimeField(65521)], ids=["gf2^12", "prime65521"]
    )
    def test_single_batch_sum(self, field):
        session, batch, _ = self._session_with_batches(field)
        fast = session.sum_offsets_batch([batch], [list(range(64))])
        slow = VSSSession.sum_offsets_batch(session, [batch], [list(range(64))])
        assert _views_key(fast) == _views_key(slow)

    def test_empty_offsets(self):
        session, batch, _ = self._session_with_batches(gf2k(12))
        assert session.diff_offsets_batch(batch, [], []) == []
        assert session.sum_offsets_batch([], []) == []

    def test_out_of_range_offsets_keep_scalar_semantics(self):
        """Bad offsets defer to the generic path and raise IndexError,
        exactly like the scalar view-by-view lookup."""
        session, batch, _ = self._session_with_batches(gf2k(12))
        bad = list(range(len(batch.views) - 63, len(batch.views) + 1))
        with pytest.raises(IndexError):
            session.diff_offsets_batch(batch, bad, bad)

    @staticmethod
    def _session_with_batches(field):
        vss = IdealVSS(field, 3, 1, backend="vectorized")
        session = vss.new_session(random.Random(0))
        rng = random.Random(7)

        def deal(dealer):
            secrets = [field(rng.randrange(field.order)) for _ in range(80)]
            # The dealer's own program performs the deal; pid 0 then
            # obtains its views of the same batch.
            if dealer == 0:
                return _drive(
                    session.share_program(0, 0, secrets, rng, count=80)
                )
            _drive(session.share_program(dealer, dealer, secrets, rng, count=80))
            return _drive(
                session.share_program(0, dealer, None, rng, count=80)
            )

        return session, deal(0), deal(1)


class TestForceScalarEnv:
    """REPRO_FORCE_SCALAR pins "auto" to the reference path, outputs fixed."""

    PARAMS = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)

    def test_forced_auto_equals_unforced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_SCALAR", raising=False)
        baseline = _summary(_run(self.PARAMS, "auto", seed=9)[0])
        monkeypatch.setenv("REPRO_FORCE_SCALAR", "1")
        forced = _summary(_run(self.PARAMS, "auto", seed=9)[0])
        assert forced == baseline

    def test_forced_auto_takes_scalar_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SCALAR", "1")
        prof = OpProfiler()
        _run(self.PARAMS, "auto", seed=9, profiler=prof)
        assert prof.total("vss", "deal_batched") == 0
        assert prof.total("vss", "combine_batched") == 0
        assert prof.total("vss", "deal_scalar_fallback") > 0

    def test_explicit_vectorized_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SCALAR", "1")
        prof = OpProfiler()
        _run(self.PARAMS, "vectorized", seed=9, profiler=prof)
        assert prof.total("vss", "deal_batched") > 0
