"""Tests for the batch layout, honest material, and cut-and-choose logic."""

import random

import pytest

from repro.core import (
    DealerLayout,
    Permutation,
    ReceiverLayout,
    challenge_bits,
    honest_material,
    scaled_parameters,
    stage1_offsets,
    validate_index_list_opening,
    validate_permutation_opening,
)


@pytest.fixture
def params():
    return scaled_parameters(n=4, d=4, num_checks=3, kappa=16, margin=4)


@pytest.fixture
def layout(params):
    return DealerLayout(params)


class TestLayout:
    def test_offsets_cover_total_exactly_once(self, params, layout):
        seen = []
        for k in range(params.ell):
            seen.append(layout.vec_x(k))
            seen.append(layout.vec_a(k))
        for j in range(params.num_checks):
            for k in range(params.ell):
                seen.extend([layout.w_x(j, k), layout.w_a(j, k), layout.perm(j, k)])
            for m in range(params.d):
                seen.append(layout.idx(j, m))
        seen.append(layout.challenge())
        assert sorted(seen) == list(range(layout.total))
        assert layout.total == params.values_per_dealer

    def test_build_secrets_places_values(self, params, layout):
        rng = random.Random(0)
        f = params.field
        material = honest_material(params, f(77), rng)
        secrets = layout.build_secrets(material)
        assert len(secrets) == layout.total
        # Vector halves.
        k0 = material.vector.nonzero_indices()[0]
        x, a = material.vector.pair_at(k0)
        assert secrets[layout.vec_x(k0)] == f(x)
        assert secrets[layout.vec_a(k0)] == f(a)
        # Permutation images.
        assert secrets[layout.perm(1, 5)] == f(material.perms[1](5))
        # Index lists.
        assert secrets[layout.idx(2, 0)] == f(material.index_lists[2][0])
        # Challenge share.
        assert secrets[layout.challenge()] == material.challenge_share

    def test_receiver_layout(self, params):
        rlayout = ReceiverLayout(params)
        rng = random.Random(1)
        perms = [Permutation.random(params.ell, rng) for _ in range(params.n)]
        secrets = rlayout.build_secrets(perms)
        assert len(secrets) == params.n * params.ell == rlayout.total
        assert secrets[rlayout.g(2, 3)] == params.field(perms[2](3))

    def test_receiver_layout_wrong_count(self, params):
        rlayout = ReceiverLayout(params)
        with pytest.raises(ValueError):
            rlayout.build_secrets([Permutation.identity(params.ell)])

    def test_material_shape_validation(self, params, layout):
        rng = random.Random(2)
        material = honest_material(params, params.field(1), rng)
        material.index_lists[0] = [0]  # wrong length
        with pytest.raises(ValueError):
            layout.build_secrets(material)


class TestHonestMaterial:
    def test_copies_are_consistent_permutations(self, params):
        rng = random.Random(3)
        m = honest_material(params, params.field(9), rng)
        for j in range(params.num_checks):
            assert m.perms[j].apply(m.vector).entries == m.ws[j].entries
            assert m.index_lists[j] == m.ws[j].nonzero_indices()

    def test_vector_is_proper(self, params):
        rng = random.Random(4)
        m = honest_material(params, params.field(9), rng)
        assert m.vector.is_proper(params.d)

    def test_distinct_tags_across_builds(self, params):
        rng = random.Random(5)
        tags = set()
        for _ in range(10):
            m = honest_material(params, params.field(9), rng)
            tags.add(next(iter(m.vector.entries.values()))[1])
        assert len(tags) == 10


class TestChallengeBits:
    def test_low_bits(self, params):
        f = params.field
        assert challenge_bits(f(0b101), 3) == [1, 0, 1]
        assert challenge_bits(f(0), 3) == [0, 0, 0]

    def test_bit_count(self, params):
        assert len(challenge_bits(params.field(12345), 7)) == 7


class TestStage1:
    def test_offsets_bit0_vs_bit1(self, params, layout):
        assert len(stage1_offsets(layout, 0, 0)) == params.ell
        assert len(stage1_offsets(layout, 0, 1)) == params.d
        assert stage1_offsets(layout, 1, 0)[0] == layout.perm(1, 0)
        assert stage1_offsets(layout, 1, 1)[0] == layout.idx(1, 0)

    def test_validate_permutation(self, params):
        f = params.field
        p = Permutation.random(6, random.Random(0))
        assert validate_permutation_opening([f(v) for v in p.mapping]) == p
        assert validate_permutation_opening([f(0), f(0)]) is None

    def test_validate_index_list(self, params):
        f = params.field
        good = [f(3), f(1), f(5), f(0)]
        assert validate_index_list_opening(good, ell=10, d=4) == [3, 1, 5, 0]
        # duplicate
        assert validate_index_list_opening([f(1), f(1), f(2), f(3)], 10, 4) is None
        # out of range
        assert validate_index_list_opening([f(1), f(2), f(3), f(99)], 10, 4) is None
        # wrong length
        assert validate_index_list_opening([f(1)], 10, 4) is None


class TestStage2EndToEnd:
    """Exercise the stage-2 plans against a real (ideal-VSS) sharing."""

    def _shared_views(self, params, material, seed=0):
        from repro.network import run_protocol
        from repro.vss import IdealVSS

        layout = DealerLayout(params)
        vss = IdealVSS(params.field, params.n, params.t)
        session = vss.new_session(random.Random(seed))
        secrets = layout.build_secrets(material)

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, secrets if pid == 0 else None, rng, count=layout.total
            )
            return batch

        result = run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(params.n)}
        )
        return layout, session, result.outputs

    def _open_all(self, session, batches, views_per_party):
        from repro.network import run_protocol

        def party(pid):
            return (yield from session.open_program(pid, views_per_party[pid]))

        result = run_protocol({pid: party(pid) for pid in batches})
        return result.outputs[1]

    def test_honest_material_passes_both_branches(self, params):
        from repro.core import stage2_passes, stage2_plan_bit0, stage2_plan_bit1

        rng = random.Random(7)
        material = honest_material(params, params.field(50), rng)
        layout, session, batches = self._shared_views(params, material)
        # bit 0 branch for check 0
        views = {
            pid: stage2_plan_bit0(
                layout, 0, material.perms[0], batches[pid].views
            ).views
            for pid in batches
        }
        values = self._open_all(session, batches, views)
        assert stage2_passes(values)
        # bit 1 branch for check 1
        views = {
            pid: stage2_plan_bit1(
                layout, 1, material.index_lists[1], batches[pid].views
            ).views
            for pid in batches
        }
        values = self._open_all(session, batches, views)
        assert stage2_passes(values)

    def test_improper_vector_fails_bit1(self, params):
        from repro.core import stage2_passes, stage2_plan_bit1
        from repro.core.adversaries import guessing_cheater_material

        rng = random.Random(8)
        f = params.field
        # Cheater prepared for all-zero challenge bits: bit-1 checks fail.
        material = guessing_cheater_material(
            params, [f(1), f(2)], rng, bit_guesses=[0] * params.num_checks
        )
        layout, session, batches = self._shared_views(params, material, seed=1)
        views = {
            pid: stage2_plan_bit1(
                layout, 0, material.index_lists[0], batches[pid].views
            ).views
            for pid in batches
        }
        values = self._open_all(session, batches, views)
        assert not stage2_passes(values)

    def test_cheater_prepared_branch_passes(self, params):
        from repro.core import stage2_passes, stage2_plan_bit0
        from repro.core.adversaries import guessing_cheater_material

        rng = random.Random(9)
        f = params.field
        material = guessing_cheater_material(
            params, [f(1), f(2)], rng, bit_guesses=[0] * params.num_checks
        )
        layout, session, batches = self._shared_views(params, material, seed=2)
        views = {
            pid: stage2_plan_bit0(
                layout, 0, material.perms[0], batches[pid].views
            ).views
            for pid in batches
        }
        values = self._open_all(session, batches, views)
        assert stage2_passes(values)
