"""Tests for the high-level AnonymousChannel facade."""

import pytest

from repro.core import AnonymousChannel, scaled_parameters
from repro.vss import BGWVSS, IdealVSS


@pytest.fixture(scope="module")
def small_params():
    return scaled_parameters(n=4, d=6, num_checks=3, kappa=16)


@pytest.fixture(scope="module")
def chan(small_params):
    return AnonymousChannel(n=4, params=small_params)


class TestSend:
    def test_basic_delivery(self, chan):
        report = chan.send({0: 1, 1: 2, 2: 2, 3: 4}, seed=0)
        assert dict(report.delivered) == {1: 1, 2: 2, 4: 1}
        assert report.received(2) == 2
        assert report.received(99) == 0
        assert not report.disqualified

    def test_default_profile_uses_two_broadcasts(self, chan):
        report = chan.send({0: 1, 1: 2, 2: 3, 3: 4}, seed=1)
        assert report.broadcast_rounds == 2
        assert report.rounds == 21 + 5

    def test_missing_party_rejected(self, chan):
        with pytest.raises(ValueError):
            chan.send({0: 1, 1: 2})

    def test_zero_message_rejected(self, chan):
        with pytest.raises(ValueError):
            chan.send({0: 0, 1: 2, 2: 3, 3: 4})

    def test_bandwidth_accounting_present(self, chan):
        report = chan.send({0: 1, 1: 2, 2: 3, 3: 4}, seed=2)
        assert report.messages_sent > 0
        assert report.field_elements > 0


class TestCannedAttacks:
    def test_jamming_attack_caught(self, chan):
        attack = chan.jamming_attack(3, seed=7)
        report = chan.send({0: 1, 1: 2, 2: 3, 3: 4}, seed=3,
                           corrupt_materials=attack)
        assert 3 in report.disqualified
        assert report.received(1) == 1
        assert report.received(2) == 1
        assert report.received(3) == 1

    def test_ballot_stuffing_attack_caught(self, chan):
        attack = chan.ballot_stuffing_attack(3, [7, 8], seed=8)
        report = chan.send({0: 1, 1: 2, 2: 3, 3: 4}, seed=4,
                           corrupt_materials=attack)
        # Either caught, or (w.p. 2^-3) survived without |Y| > n.
        assert sum(report.delivered.values()) <= 4

    def test_abstain_is_harmless(self, chan):
        attack = chan.abstain(3, seed=9)
        report = chan.send({0: 1, 1: 2, 2: 3, 3: 4}, seed=5,
                           corrupt_materials=attack)
        assert 3 not in report.disqualified
        assert dict(report.delivered) == {1: 1, 2: 1, 3: 1}


class TestConfiguration:
    def test_vss_selectors(self, small_params):
        assert isinstance(
            AnonymousChannel(n=4, params=small_params, vss="ideal").vss,
            IdealVSS,
        )
        assert isinstance(
            AnonymousChannel(n=4, params=small_params, vss="bgw").vss, BGWVSS
        )

    def test_explicit_scheme_instance(self, small_params):
        scheme = IdealVSS(small_params.field, 4, 1)
        chan = AnonymousChannel(n=4, params=small_params, vss=scheme)
        assert chan.vss is scheme

    def test_unknown_selector(self, small_params):
        with pytest.raises(ValueError):
            AnonymousChannel(n=4, params=small_params, vss="magic")

    def test_default_params_generated(self):
        chan = AnonymousChannel(n=6, t=2)
        assert chan.params.n == 6
        assert chan.params.t == 2

    def test_other_receiver(self, small_params):
        chan = AnonymousChannel(n=4, params=small_params, receiver=2)
        report = chan.send({0: 5, 1: 6, 2: 7, 3: 8}, seed=6)
        assert dict(report.delivered) == {5: 1, 6: 1, 7: 1, 8: 1}
