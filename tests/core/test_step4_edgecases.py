"""Regression tests for the receiver's step-4 edge cases.

Two historic bugs in ``core/anonchan.py``'s receiver branch:

- the ``x`` half of each coordinate was gated on the *tag* index
  (``opened[2k] if 2k + 1 < len(opened)``), so an odd-length opened
  batch silently zeroed a trailing coordinate instead of failing;
- the step-4 inbox accepted a payload list from *any* sender id with
  only an isinstance/length check — and with no passed provers
  (``expected_len == 0``) any empty list from anyone — instead of
  filtering to the known party set and skipping reconstruction
  entirely.
"""

import pytest

import repro.core.anonchan as anonchan_mod
from repro.core import run_anonchan, scaled_parameters
from repro.core.receiver import collect_step4_columns, pair_opened_coordinates
from repro.fields import gf2k
from repro.vss import IdealVSS
from repro.vss.ideal import IdealVSSSession

FIELD = gf2k(8)


class TestPairOpenedCoordinates:
    def test_even_batch_pairs_and_guards_each_index(self):
        vals = [FIELD(3), FIELD(5), None, FIELD(7), FIELD(9), None]
        xs, tags, failed = pair_opened_coordinates(FIELD, vals, 3)
        assert [x.value for x in xs] == [3, 0, 0]
        assert [t.value for t in tags] == [5, 0, 0]
        assert failed == 2

    def test_odd_batch_raises_instead_of_truncating(self):
        """Pre-fix behavior zeroed the trailing coordinate silently."""
        vals = [FIELD(3), FIELD(5), FIELD(7)]  # x_1 present, tag_1 missing
        with pytest.raises(ValueError, match="malformed step-4 batch"):
            pair_opened_coordinates(FIELD, vals, 2)

    def test_short_and_long_batches_raise(self):
        with pytest.raises(ValueError):
            pair_opened_coordinates(FIELD, [FIELD(1), FIELD(2)], 2)
        with pytest.raises(ValueError):
            pair_opened_coordinates(FIELD, [FIELD(1)] * 6, 2)


class TestCollectStep4Columns:
    def test_filters_to_known_party_set(self):
        column = [("p", (), FIELD(1))] * 4
        private = {
            1: list(column),       # known party: accepted
            7: list(column),       # outside [0, n): rejected
            -1: list(column),      # negative id: rejected
            "1": list(column),     # non-int id: rejected
            2: list(column)[:3],   # wrong length: rejected
            3: tuple(column),      # not a list: rejected
        }
        collected = collect_step4_columns(private, 4, receiver=0, n=4)
        assert set(collected) == {1}

    def test_receiver_own_slot_is_not_overwritable(self):
        """A forged column claiming the receiver's own id is dropped."""
        column = [("p", (), FIELD(1))] * 2
        collected = collect_step4_columns({0: column, 1: column}, 2, 0, 4)
        assert set(collected) == {1}

    def test_empty_expected_rejects_nothing_matches_nothing(self):
        # Even when the expected length is 0 (no passed provers), an
        # unsolicited empty list from an unknown id must not land.
        assert collect_step4_columns({9: []}, 0, 0, 4) == {}


class TestNoPassedProvers:
    def test_reconstruction_skipped_when_cut_and_choose_rejects_all(
        self, monkeypatch
    ):
        """With no passed provers the receiver must not reconstruct.

        Pre-fix, the receiver still called
        ``reconstruct_private_batch`` with ``count=0`` over arbitrary
        collected empty lists; now the whole step is skipped and the
        output is the empty multiset.
        """
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        msgs = {i: params.field(100 + i) for i in range(params.n)}

        monkeypatch.setattr(
            anonchan_mod, "stage2_passes", lambda values: False
        )
        calls: list[int] = []
        real = IdealVSSSession.reconstruct_private_batch

        def spying(self, columns, count, verifier, views=None):
            calls.append(count)
            return real(self, columns, count, verifier, views=views)

        monkeypatch.setattr(
            IdealVSSSession, "reconstruct_private_batch", spying
        )
        res = run_anonchan(params, vss, msgs, seed=21)
        out = res.outputs[0]
        assert out.passed == frozenset()
        assert not out.output  # empty multiset: nothing was delivered
        assert out.diagnostics["failed_coordinates"] == 0
        assert calls == []  # reconstruction skipped entirely

    def test_transport_parity_when_no_passed_provers(self, monkeypatch):
        """Both transports agree on the skip-reconstruction path."""
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        msgs = {i: params.field(100 + i) for i in range(params.n)}
        monkeypatch.setattr(
            anonchan_mod, "stage2_passes", lambda values: False
        )
        res_lock = run_anonchan(params, vss, msgs, seed=22, transport="lockstep")
        res_async = run_anonchan(params, vss, msgs, seed=22, transport="async")
        assert res_lock.outputs[0].output == res_async.outputs[0].output
        assert res_lock.metrics == res_async.metrics
