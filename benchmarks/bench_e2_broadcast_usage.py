"""E2 — Broadcast-channel usage (paper abstract + §1.1).

The reduction to VSS is *broadcast-round-preserving*: AnonChan adds no
broadcast rounds beyond the VSS sharing phase's.  With the GGOR13 VSS
that is **two** physical broadcast rounds for the whole anonymous
channel — the fewest known.  PW96's fault localization burns one public
investigation per failed run: Omega(n^2).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import phase_breakdown, report

from repro.baselines import MaximalDisruption, run_pw96
from repro.core import run_anonchan, scaled_parameters
from repro.obs import Tracer
from repro.vss import GGOR13_COST, RB89_COST, IdealVSS


def test_e2_broadcast_rounds(benchmark):
    rows = []

    def run_all():
        rows.clear()
        for n in (3, 5, 7):
            params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
            for name, cost in (("GGOR13", GGOR13_COST), ("RB89(model)", RB89_COST)):
                vss = IdealVSS(params.field, params.n, params.t, cost=cost)
                messages = {i: params.field(50 + i) for i in range(n)}
                result = run_anonchan(params, vss, messages, seed=n)
                rows.append(
                    ("AnonChan+" + name, n, result.metrics.broadcast_rounds,
                     "measured")
                )
            t = (n - 1) // 2
            trace = run_pw96(n, set(range(t)), MaximalDisruption())
            rows.append(("PW96 (worst case)", n, trace.broadcast_rounds, "model"))
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    # One traced run pins *where* the broadcasts happen: the JSON
    # artifact shows every broadcast round inside the VSS sharing phase.
    params = scaled_parameters(n=5, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)
    tracer = Tracer()
    run_anonchan(
        params, vss, {i: params.field(50 + i) for i in range(5)},
        seed=5, tracer=tracer,
    )
    breakdown = phase_breakdown(tracer)
    report(
        "e2_broadcast",
        "Physical-broadcast rounds for one anonymous-channel execution",
        ["protocol", "n", "broadcast rounds", "source"],
        rows,
        notes="paper claim: 2 broadcast rounds total with the GGOR13 VSS,\n"
              "independent of n; PW96 grows quadratically under attack.",
        extra={"phase_breakdown": breakdown},
    )
    ggor = [(n, bc) for (p, n, bc, _) in rows if p == "AnonChan+GGOR13"]
    assert all(bc == 2 for _n, bc in ggor)
    by_phase = {p["phase"]: p for p in breakdown["phases"]}
    assert by_phase["step 1: VSS-Share"]["broadcast_rounds"] == 2
    assert all(
        p["broadcast_rounds"] == 0
        for name, p in by_phase.items()
        if name != "step 1: VSS-Share"
    )
    pw = {n: bc for (p, n, bc, _) in rows if p.startswith("PW96")}
    assert pw[7] > pw[3]
