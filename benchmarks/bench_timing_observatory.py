"""Runtime — virtual-time observatory cost and makespan fidelity.

Two questions about the timing observatory (schema-v4 virtual clocks,
see ``repro.obs.timing``):

1. *Fidelity* — for a full-mesh exchange under each latency model, does
   the observed virtual makespan match the analytic per-round
   expectation ``rounds * E[max of (n-1) samples]``?  Virtual time is
   deterministic given the seed, so the makespan columns are exact
   gating metrics: any drift means the clock semantics changed.
2. *Overhead* — what does stamping the trace cost?  The async engine
   advances virtual clocks whether or not a tracer is attached, so the
   traced/untraced ratio isolates the cost of event recording itself.

The observed-makespan and predicted-makespan columns are deterministic
(bench-check gates on them); the wall-clock overhead column is
informational.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.network import RoundOutput, run_protocol
from repro.network.runtime import (
    FixedLatency,
    InMemoryAsyncTransport,
    UniformLatency,
    ZeroLatency,
)
from repro.obs import Tracer

ROUNDS = 30
REPEATS = 3


def _mesh_programs(n: int, rounds: int = ROUNDS):
    """Full-mesh exchange: n*(n-1) private messages per round."""

    def prog(pid: int):
        inbox = yield RoundOutput(
            private={q: [pid] for q in range(n) if q != pid},
        )
        for _ in range(rounds - 1):
            total = sum(v for vals in inbox.private.values() for v in vals)
            inbox = yield RoundOutput(
                private={q: [total] for q in range(n) if q != pid},
            )
        return None

    return {pid: prog(pid) for pid in range(n)}


def _models():
    return [
        ("zero", ZeroLatency()),
        ("fixed-2ms", FixedLatency(base_ms=2.0)),
        ("jitter-1+5ms", UniformLatency(base_ms=1.0, jitter_ms=5.0)),
    ]


def _run(n: int, latency, tracer=None):
    transport = InMemoryAsyncTransport(latency=latency, seed=7)
    start = time.perf_counter()
    result = run_protocol(
        _mesh_programs(n), transport=transport, tracer=tracer
    )
    return time.perf_counter() - start, result


def test_timing_observatory(benchmark):
    rows = []

    def run():
        rows.clear()
        for n in (3, 5, 8):
            for label, latency in _models():
                wall_plain, result = _run(n, latency)
                wall_plain = min(
                    wall_plain,
                    *(_run(n, latency)[0] for _ in range(REPEATS - 1)),
                )
                wall_traced = min(
                    _run(n, latency, tracer=Tracer())[0]
                    for _ in range(REPEATS)
                )
                observed = result.metrics.makespan_ms
                # Each party waits on its n-1 inbound messages per
                # round; the cross-party selection effect makes the
                # observed drift sit slightly above this per-party
                # expectation under jitter.
                predicted = ROUNDS * latency.expected_round_ms(n - 1)
                delta = (observed - predicted) / predicted if predicted else 0.0
                rows.append(
                    (
                        f"n={n}/{label}",
                        result.metrics.rounds,
                        round(observed, 3),
                        round(predicted, 3),
                        round(delta * 100, 1),
                        round(wall_traced / wall_plain, 2),
                    )
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "timing_observatory",
        "Virtual-time observatory: makespan fidelity and tracing overhead",
        ["config", "rounds", "observed makespan ms", "predicted makespan ms",
         "delta %", "trace overhead"],
        rows,
        notes="virtual makespans are deterministic given the transport\n"
              "seed, so the makespan columns gate clock-semantics\n"
              "regressions exactly; the overhead column (traced / untraced\n"
              "wall clock, best of {r}) is informational — the engine\n"
              "advances virtual clocks either way, tracing only adds event\n"
              "recording.".format(r=REPEATS),
    )
    for key, rounds, observed, predicted, delta_pct, overhead in rows:
        assert rounds == ROUNDS
        if key.endswith("zero"):
            assert observed == 0.0 and predicted == 0.0
        elif key.endswith("fixed-2ms"):
            # Fixed latency: every round advances by exactly base_ms.
            assert abs(observed - predicted) < 1e-9
        else:
            # Jitter: above the per-party expectation (selection across
            # parties), but within 50% of it.
            assert -5.0 <= delta_pct <= 50.0
        # Event recording must not dominate the run.
        assert overhead < 10.0
