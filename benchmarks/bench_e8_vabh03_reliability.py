"""E8 — Reliability: this paper vs vABH03 (paper §1.2).

vABH03's dart parameters guarantee Reliability with probability 1/2
per run; fixing that by repetition makes the construction malleable
(later repetitions reveal earlier outcomes, which the adversary can
echo).  AnonChan's parameters make reliability 1 - negl in a single
run, with non-malleability intact.
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.baselines import (
    collision_free_probability,
    gj04_measure_reliability,
    half_reliability_parameters,
    measure_reliability,
    run_with_repetition,
)
from repro.core import (
    honest_input_multiset,
    reliability_holds,
    run_anonchan,
    scaled_parameters,
)
from repro.vss import IdealVSS


def test_e8_per_run_reliability(benchmark):
    rows = []

    def run():
        rows.clear()
        # vABH03 regime: one dart per message, birthday-bound slots.
        for n in (4, 8, 12):
            slots, copies = half_reliability_parameters(n)
            r = measure_reliability(n, slots, copies, trials=500, seed=n)
            rows.append(("vABH03-style", n, slots, copies, f"{r:.3f}"))
        # GJ04: non-interactive, no collision handling at all (§1.2);
        # reliability is whatever the birthday bound allows.
        for n in (4, 8, 12):
            slots = 4 * n
            r = gj04_measure_reliability(n, slots, trials=500, seed=n)
            predicted = collision_free_probability(n, slots)
            rows.append(
                ("GJ04-style", n, slots, 1, f"{r:.3f} (birthday {predicted:.3f})")
            )
        # Our regime: d darts, l = 8(n-1)d slots, measured on the real
        # protocol (fewer trials; it is a full MPC execution).
        for n in (4, 6):
            params = scaled_parameters(n=n, d=8, num_checks=3, kappa=16)
            vss = IdealVSS(params.field, params.n, params.t)
            f = params.field
            ok = 0
            trials = 15
            for trial in range(trials):
                messages = {i: f(300 + i) for i in range(n)}
                res = run_anonchan(params, vss, messages, seed=trial * 13)
                x = honest_input_multiset(list(messages.values()))
                if reliability_holds(x, res.outputs[0].output):
                    ok += 1
            rows.append(
                ("AnonChan (this paper)", n, params.ell, params.d,
                 f"{ok / trials:.3f}")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e8_reliability",
        "Per-run Reliability: vABH03 regime vs this paper",
        ["protocol", "n", "slots/l", "copies/d", "reliability"],
        rows,
        notes="§1.2: vABH03 guarantees Reliability w.p. 1/2 only; a careful\n"
              "choice of parameters (Claim 2) makes ours 1 - negl.",
    )
    vabh = [float(r[4]) for r in rows if r[0].startswith("vABH03")]
    ours = [float(r[4]) for r in rows if r[0].startswith("AnonChan")]
    gj04 = [float(r[4].split()[0]) for r in rows if r[0].startswith("GJ04")]
    assert all(0.25 <= v <= 0.8 for v in vabh)
    assert all(v == 1.0 for v in ours)
    assert gj04[0] > gj04[-1]  # GJ04 reliability decays with n


def test_e8_repetition_malleability(benchmark):
    rows = []

    def run():
        rows.clear()
        total_echoes = 0
        reps_used = []
        trials = 40
        for seed in range(trials):
            rng = random.Random(seed)
            trace = run_with_repetition(
                [11, 22, 33, 44, 55], slots=6, copies=1, rng=rng
            )
            total_echoes += trace.echoes
            reps_used.append(trace.repetitions)
        rows.append(
            (trials, f"{sum(reps_used) / trials:.1f}", max(reps_used),
             total_echoes)
        )
        return total_echoes

    echoes = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e8_malleability",
        "Repeat-until-delivered vABH03: the malleability cost",
        ["trials", "avg repetitions", "max repetitions",
         "adversarial echoes of revealed honest values"],
        rows,
        notes="every echo is an element of Y\\X *correlated with X* —\n"
              "exactly the non-malleability violation §1.2 warns about.\n"
              "AnonChan needs no repetition, so the attack surface is gone.",
    )
    assert echoes > 0
