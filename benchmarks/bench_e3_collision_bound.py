"""E3 — Claim 2: the hypergeometric collision tail.

Claim 2 bounds the total pairwise dart collisions:
``Pr[sum X_ij >= n^2(d^2/l + C d)] <= n^2 exp(-C^2 d)``.
We Monte-Carlo the dart-throwing, compare empirical exceedance rates to
the analytic bound across a parameter sweep, and verify the resulting
reliability margin (each sender keeps >= d/2 darts w.h.p.).
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.analysis import (
    collision_tail_bound,
    expected_pairwise_collisions,
    paper_collision_budget,
    paper_tail_bound,
)

TRIALS = 600


def _sample_total_collisions(n, d, ell, rng):
    sets = [frozenset(rng.sample(range(ell), d)) for _ in range(n)]
    return sum(
        len(sets[i] & sets[j]) for i in range(n) for j in range(n) if i != j
    )


def _sample_per_party_hits(n, d, ell, rng):
    sets = [frozenset(rng.sample(range(ell), d)) for _ in range(n)]
    others = set().union(*sets[1:]) if n > 1 else set()
    return len(sets[0] & others)


def test_e3_total_collision_tail(benchmark):
    """Empirical exceedance vs the Claim 2 bound, sweeping (n, d, l)."""
    rows = []

    def run():
        rows.clear()
        rng = random.Random(3)
        for n, d, ell, c in (
            (4, 8, 256, 0.20),
            (4, 8, 256, 0.35),
            (8, 8, 512, 0.20),
            (8, 16, 2048, 0.15),
            (16, 8, 1024, 0.20),
            # rows where the analytic bound is non-trivially < 1:
            (4, 32, 4096, 0.50),
            (8, 32, 8192, 0.45),
            (4, 64, 8192, 0.40),
        ):
            budget = paper_collision_budget(n, d, ell, c)
            bound = paper_tail_bound(n, d, ell, c)
            exceed = sum(
                _sample_total_collisions(n, d, ell, rng) >= budget
                for _ in range(TRIALS)
            ) / TRIALS
            mean = expected_pairwise_collisions(n, d, ell)
            rows.append(
                (n, d, ell, c, f"{mean:.1f}", f"{budget:.1f}",
                 f"{exceed:.4f}", f"{min(bound, 1.0):.4f}",
                 "OK" if exceed <= bound + 0.02 else "VIOLATED")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e3_total_tail",
        f"Claim 2 total-collision tail, {TRIALS} trials per row",
        ["n", "d", "l", "C", "E[sum X_ij]", "budget", "empirical",
         "bound n^2 e^{-C^2 d}", "verdict"],
        rows,
        notes="the empirical exceedance probability never exceeds the\n"
              "analytic bound (which is loose, as union bounds are).",
    )
    assert all(row[-1] == "OK" for row in rows)


def test_e3_per_party_reliability_margin(benchmark):
    """Each sender keeps >= d/2 darts: the margin Reliability rests on."""
    rows = []

    def run():
        rows.clear()
        rng = random.Random(4)
        for n, d, margin in ((4, 8, 4), (4, 8, 8), (8, 8, 8), (8, 16, 8), (16, 8, 8)):
            ell = margin * (n - 1) * d
            overflow = sum(
                _sample_per_party_hits(n, d, ell, rng) >= d / 2
                for _ in range(TRIALS)
            ) / TRIALS
            bound = collision_tail_bound(n, d, ell, budget=d / 2)
            rows.append(
                (n, d, ell, f"{(n - 1) * d * d / ell:.2f}",
                 f"{overflow:.4f}", f"{min(bound, 1.0):.4f}",
                 "OK" if overflow <= bound + 0.02 else "VIOLATED")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e3_per_party",
        f"Per-sender dart-loss probability, {TRIALS} trials per row",
        ["n", "d", "l", "E[hits]", "empirical P[>=d/2 hit]",
         "Chvatal bound", "verdict"],
        rows,
    )
    assert all(row[-1] == "OK" for row in rows)


def test_e3_paper_parameter_identity(benchmark):
    """The proof's algebra: C=1/(4n^2), d=n^4 k, l=4 n^6 k gives budget
    exactly d/2 and exponent exactly k/16."""
    rows = []

    def run():
        rows.clear()
        for n in (3, 4, 5, 8, 12):
            kappa = 2 * n
            d, ell = n**4 * kappa, 4 * n**6 * kappa
            c = 1 / (4 * n**2)
            budget = paper_collision_budget(n, d, ell, c)
            rows.append(
                (n, kappa, d, ell, f"{budget / d:.4f}",
                 f"{c * c * d / kappa:.4f}")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e3_identity",
        "Paper parameter identities (budget/d == 1/2, C^2 d / kappa == 1/16)",
        ["n", "kappa", "d", "l", "budget/d", "C^2*d/kappa"],
        rows,
    )
    for row in rows:
        assert row[4] == "0.5000"
        assert row[5] == "0.0625"
