"""E6 — Pseudosignatures and broadcast simulation (paper §4).

Reproduces the section's quantitative story:

- setup cost: constant rounds + 2 physical broadcasts (vs PW96's
  Omega(n^2) for both);
- transferability: honest signatures survive every hop; a partially
  signing cheater rarely creates an accept->reject gap;
- the application: Dolev–Strong over pseudosignatures simulates
  broadcast on point-to-point channels for t < n/2.
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.baselines import MaximalDisruption, run_pw96, worst_case_runs
from repro.byzantine import SimulatedBroadcastChannel
from repro.network import SilentAdversary
from repro.pseudosig import PseudosignatureScheme, break_probability


def test_e6_setup_cost_table(benchmark):
    rows = []

    def run():
        rows.clear()
        for n in (5, 9, 13, 21):
            t = (n - 1) // 2
            chan = SimulatedBroadcastChannel(n=n, t=t)
            cost = chan.setup(random.Random(n))
            pw_runs = worst_case_runs(n, t)
            rows.append(
                (n, t, cost.rounds, cost.broadcast_rounds,
                 pw_runs * 4, pw_runs)
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e6_setup",
        "Pseudosignature setup: ours (AnonChan+GGOR13) vs PW96 worst case",
        ["n", "t", "our rounds", "our broadcasts",
         "PW96 rounds", "PW96 broadcasts"],
        rows,
        notes="our setup is constant in n (26 rounds, 2 broadcasts);\n"
              "PW96's worst case grows quadratically.",
    )
    ours = {r[0]: (r[2], r[3]) for r in rows}
    assert len(set(ours.values())) == 1
    assert all(r[3] == 2 for r in rows)
    assert rows[-1][4] > rows[0][4] * 4


def test_e6_transfer_degradation(benchmark):
    rows = []

    def run():
        rows.clear()
        rng = random.Random(0)
        scheme = PseudosignatureScheme(n=7, signer=0, blocks=24, max_transfers=4)
        for level in range(1, 5):
            rows.append(
                ("threshold", level, scheme.threshold(level), scheme.blocks)
            )
        honest = break_probability(scheme, 40, rng, skip_fraction=0.0)
        half = break_probability(scheme, 40, rng, skip_fraction=0.5)
        rows.append(("break rate (honest signer)", "-", f"{honest:.3f}", "-"))
        rows.append(("break rate (50% partial signer)", "-", f"{half:.3f}", "-"))
        return honest, half

    honest, half = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e6_transfer",
        "Verifier thresholds per transfer level, and break rates",
        ["quantity", "level", "value", "of blocks"],
        rows,
        notes="thresholds decrease by delta per hop; anonymity of the key\n"
              "setup keeps the cheating signer's break rate small.",
    )
    assert honest == 0.0
    assert half <= 0.25


def test_e6_anonymity_ablation(benchmark):
    """Why the setup must be anonymous: break rates with and without."""
    from repro.pseudosig import (
        chain_broken,
        targeted_partial_signature,
        transfer_chain,
    )

    rows = []

    def run():
        rows.clear()
        scheme = PseudosignatureScheme(n=7, signer=0, blocks=24, max_transfers=4)
        trials = 30
        # De-anonymized: the targeted attack, per trial.
        rng = random.Random(0)
        broken = 0
        for _ in range(trials):
            setup, views, ownership = scheme.deanonymized_setup(rng)
            others = sorted(views)
            sig = targeted_partial_signature(
                scheme, setup, ownership, scheme.mac_field(5),
                victim=others[1], victim_level=2,
            )
            steps = transfer_chain(scheme, views, sig, others[:2])
            if chain_broken(steps):
                broken += 1
        rows.append(("de-anonymized setup + targeted attack",
                     f"{broken / trials:.3f}"))
        # Anonymous: the best the signer can do is guess.
        rate = break_probability(scheme, trials, random.Random(1),
                                 skip_fraction=0.2)
        rows.append(("anonymous setup + blind attack", f"{rate:.3f}"))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e6_anonymity_ablation",
        "Transferability break rate vs setup anonymity (30 trials each)",
        ["configuration", "break rate"],
        rows,
        notes='§4: a cheating signer "does not know whose keys are whose in\n'
              "any given block\" — remove that and the scheme breaks with\n"
              "probability 1; keep it and the break rate collapses.",
    )
    assert float(rows[0][1]) == 1.0
    assert float(rows[1][1]) <= 0.2


def test_e6_simulated_broadcast_under_faults(benchmark):
    rows = []

    def run():
        rows.clear()
        n, t = 7, 3
        chan = SimulatedBroadcastChannel(n=n, t=t)
        chan.setup(random.Random(1))
        for label, adversary, honest_set in (
            ("no faults", None, range(n)),
            ("t crashed", SilentAdversary({4, 5, 6}), range(4)),
        ):
            res = chan.broadcast(0, "v", adversary=adversary)
            decisions = {res.outputs[p] for p in honest_set}
            rows.append(
                (label, res.metrics.rounds, res.metrics.broadcast_rounds,
                 len(decisions), decisions == {"v"})
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e6_broadcast_sim",
        "Dolev-Strong over pseudosignatures (n=7, t=3 < n/2)",
        ["scenario", "rounds", "physical broadcasts", "distinct decisions",
         "agreement+validity"],
        rows,
        notes="zero physical broadcasts in the main phase; agreement holds\n"
              "with t parties crashed — resilience no unauthenticated\n"
              "protocol can reach (t >= n/3 barrier [LSP82]).",
    )
    assert all(r[2] == 0 and r[3] == 1 and r[4] for r in rows)
