"""Eµ — Microbenchmarks of the substrate primitives.

Field arithmetic, interpolation, Berlekamp–Welch decoding, VSS
share/reconstruct throughput, and one end-to-end AnonChan execution.
These are the knobs that set the wall-clock scale of every experiment.

``test_micro_batch_sharing_speedup`` additionally publishes the
canonical ``BENCH_emu_batch_sharing.json`` (root-level, via
``_common.report``) recording the batched-vs-scalar dealing +
reconstruction speedup.
"""

import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.fields import Polynomial, gf2k, interpolate_at
from repro.sharing import ShamirScheme, berlekamp_welch
from repro.vss import IdealVSS
from repro.core import run_anonchan, scaled_parameters


def test_micro_gf2k_mul(benchmark):
    f = gf2k(16)
    pairs = [(i * 997 % f.order, i * 131 % f.order) for i in range(1, 1001)]

    def run():
        mul = f.mul
        acc = 0
        for a, b in pairs:
            acc ^= mul(a, b)
        return acc

    benchmark(run)


def test_micro_gf2k_inv(benchmark):
    f = gf2k(16)
    values = [i * 31 % (f.order - 1) + 1 for i in range(1000)]

    def run():
        inv = f.inv
        acc = 0
        for v in values:
            acc ^= inv(v)
        return acc

    benchmark(run)


def test_micro_tableless_gf2_64_mul(benchmark):
    f = gf2k(64)
    a, b = 0x0123456789ABCDEF, 0xFEDCBA9876543210

    def run():
        x = a
        for _ in range(100):
            x = f.mul(x, b)
        return x

    benchmark(run)


def test_micro_interpolation(benchmark):
    f = gf2k(16)
    rng = random.Random(0)
    poly = Polynomial.random(f, 5, rng)
    pts = [(f(i), poly(i)) for i in range(1, 7)]
    benchmark(lambda: interpolate_at(f, pts, 0))


def test_micro_berlekamp_welch(benchmark):
    f = gf2k(16)
    rng = random.Random(1)
    poly = Polynomial.random(f, 3, rng)
    pts = [(f(i), poly(i)) for i in range(1, 11)]
    pts[2] = (pts[2][0], pts[2][1] + f(9))
    pts[7] = (pts[7][0], pts[7][1] + f(5))

    def run():
        decoded, errors = berlekamp_welch(f, pts, degree=3)
        assert len(errors) == 2
        return decoded

    benchmark(run)


def test_micro_shamir_share(benchmark):
    f = gf2k(16)
    scheme = ShamirScheme(f, n=9, t=4)
    rng = random.Random(2)
    benchmark(lambda: scheme.share(f(123), rng))


def test_micro_batch_sharing_speedup(benchmark):
    """Batched dealing + reconstruction vs the scalar reference path.

    Measures the raw matrix form (``share_matrix`` /
    ``reconstruct_matrix``) — the form the VSS hot path consumes —
    against per-secret ``share`` + ``reconstruct_all``.  The acceptance
    bar is a >= 5x speedup at paper-scale batch sizes (a dealer at even
    the scaled parameters shares on the order of 10^3 values; the
    paper-exact parameters are orders of magnitude beyond that).
    """
    f = gf2k(16)
    n, t = 7, 3
    scalar = ShamirScheme(f, n, t, backend="scalar")
    batched = ShamirScheme(f, n, t, backend="vectorized")
    xs = [p.value for p in batched.points]
    rows = []

    def run():
        rows.clear()
        for batch in (256, 1024, 4096, 16384):
            ints = [(i * 131) % f.order for i in range(batch)]
            secrets = [f(v) for v in ints]

            t0 = time.perf_counter()
            dealt = [scalar.share(s, random.Random(i)) for i, s in enumerate(secrets)]
            opened_scalar = [scalar.reconstruct_all(r).value for r in dealt]
            t_scalar = time.perf_counter() - t0

            t0 = time.perf_counter()
            table = batched.share_matrix(ints, random.Random(0))
            opened_batched = batched.reconstruct_matrix(table, xs)
            t_batched = time.perf_counter() - t0

            assert opened_scalar == opened_batched == ints
            rows.append(
                (batch,
                 round(t_scalar * 1e3, 2),
                 round(t_batched * 1e3, 2),
                 round(t_scalar / t_batched, 2))
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "emu_batch_sharing",
        "Batched vs scalar Shamir dealing + reconstruction "
        "(GF(2^16), n=7, t=3)",
        ["batch", "scalar ms", "batched ms", "speedup"],
        rows,
        notes="scalar = per-secret share() + reconstruct_all();\n"
              "batched = share_matrix() + reconstruct_matrix() through the\n"
              "numpy vector backend (the form the VSS hot path consumes).",
    )
    # Acceptance: >= 5x at paper-scale batch sizes.
    paper_scale = [r for r in rows if r[0] >= 4096]
    assert paper_scale and all(r[3] >= 5.0 for r in paper_scale), rows


def test_micro_ideal_vss_batch_share(benchmark):
    f = gf2k(16)
    scheme = IdealVSS(f, n=7, t=3)
    secrets = [f(i) for i in range(256)]

    def run():
        from repro.network import run_protocol

        session = scheme.new_session(random.Random(0))

        def party(pid, rng):
            return (
                yield from session.share_program(
                    pid, 0, secrets if pid == 0 else None, rng,
                    count=len(secrets),
                )
            )

        return run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(7)}
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_micro_anonchan_end_to_end(benchmark):
    params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t)
    f = params.field
    messages = {i: f(100 + i) for i in range(4)}
    seeds = iter(range(10_000))

    def run():
        res = run_anonchan(params, vss, messages, seed=next(seeds))
        assert res.outputs[0].output is not None
        return res

    benchmark.pedantic(run, rounds=3, iterations=1)
