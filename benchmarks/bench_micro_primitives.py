"""Eµ — Microbenchmarks of the substrate primitives.

Field arithmetic, interpolation, Berlekamp–Welch decoding, VSS
share/reconstruct throughput, and one end-to-end AnonChan execution.
These are the knobs that set the wall-clock scale of every experiment.
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.fields import Polynomial, gf2k, interpolate_at
from repro.sharing import ShamirScheme, berlekamp_welch
from repro.vss import IdealVSS
from repro.core import run_anonchan, scaled_parameters


def test_micro_gf2k_mul(benchmark):
    f = gf2k(16)
    pairs = [(i * 997 % f.order, i * 131 % f.order) for i in range(1, 1001)]

    def run():
        mul = f.mul
        acc = 0
        for a, b in pairs:
            acc ^= mul(a, b)
        return acc

    benchmark(run)


def test_micro_gf2k_inv(benchmark):
    f = gf2k(16)
    values = [i * 31 % (f.order - 1) + 1 for i in range(1000)]

    def run():
        inv = f.inv
        acc = 0
        for v in values:
            acc ^= inv(v)
        return acc

    benchmark(run)


def test_micro_tableless_gf2_64_mul(benchmark):
    f = gf2k(64)
    a, b = 0x0123456789ABCDEF, 0xFEDCBA9876543210

    def run():
        x = a
        for _ in range(100):
            x = f.mul(x, b)
        return x

    benchmark(run)


def test_micro_interpolation(benchmark):
    f = gf2k(16)
    rng = random.Random(0)
    poly = Polynomial.random(f, 5, rng)
    pts = [(f(i), poly(i)) for i in range(1, 7)]
    benchmark(lambda: interpolate_at(f, pts, 0))


def test_micro_berlekamp_welch(benchmark):
    f = gf2k(16)
    rng = random.Random(1)
    poly = Polynomial.random(f, 3, rng)
    pts = [(f(i), poly(i)) for i in range(1, 11)]
    pts[2] = (pts[2][0], pts[2][1] + f(9))
    pts[7] = (pts[7][0], pts[7][1] + f(5))

    def run():
        decoded, errors = berlekamp_welch(f, pts, degree=3)
        assert len(errors) == 2
        return decoded

    benchmark(run)


def test_micro_shamir_share(benchmark):
    f = gf2k(16)
    scheme = ShamirScheme(f, n=9, t=4)
    rng = random.Random(2)
    benchmark(lambda: scheme.share(f(123), rng))


def test_micro_ideal_vss_batch_share(benchmark):
    f = gf2k(16)
    scheme = IdealVSS(f, n=7, t=3)
    secrets = [f(i) for i in range(256)]

    def run():
        from repro.network import run_protocol

        session = scheme.new_session(random.Random(0))

        def party(pid, rng):
            return (
                yield from session.share_program(
                    pid, 0, secrets if pid == 0 else None, rng,
                    count=len(secrets),
                )
            )

        return run_protocol(
            {pid: party(pid, random.Random(pid)) for pid in range(7)}
        )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_micro_anonchan_end_to_end(benchmark):
    params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t)
    f = params.field
    messages = {i: f(100 + i) for i in range(4)}
    seeds = iter(range(10_000))

    def run():
        res = run_anonchan(params, vss, messages, seed=next(seeds))
        assert res.outputs[0].output is not None
        return res

    benchmark.pedantic(run, rounds=3, iterations=1)
