"""E1 — Round-complexity comparison (paper §1.1/§1.2).

Reproduces the paper's headline table: AnonChan's round complexity is
essentially ``r_VSS-share`` (7 with RB89), versus Zhang'11's
``r_VSS + r_comp + r_eq + r_mult`` (bit decomposition: 114 rounds per
comparison/equality with [DFK+06]) and PW96's ``Omega(n^2)``.

Measured part: actual simulator rounds of our AnonChan implementation
across VSS profiles and party counts.  Model part: the cited figures
for the baselines (no implementations of them ever existed; the paper
compares formulas).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import phase_breakdown, report

from repro.analysis import comparison_table
from repro.core import run_anonchan, scaled_parameters
from repro.obs import Tracer
from repro.vss import GGOR13_COST, RB89_COST, IdealVSS, VSSCost
from repro.vss.costs import RAB94_COST


def _measure_rounds(
    n: int, cost: VSSCost, seed: int = 0, tracer: Tracer | None = None
) -> tuple[int, int]:
    params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
    vss = IdealVSS(params.field, params.n, params.t, cost=cost)
    messages = {i: params.field(100 + i) for i in range(n)}
    result = run_anonchan(params, vss, messages, seed=seed, tracer=tracer)
    assert result.outputs[0].output is not None
    return result.metrics.rounds, result.metrics.broadcast_rounds


def test_e1_measured_rounds_across_vss(benchmark):
    """Measured: AnonChan rounds = r_VSS-share + 5, for every profile."""
    rows = []

    def run_all():
        rows.clear()
        for name, cost in (
            ("RB89 (7r)", RB89_COST),
            ("Rab94 (9r)", RAB94_COST),
            ("GGOR13 (21r)", GGOR13_COST),
        ):
            for n in (3, 5, 7):
                rounds, bc = _measure_rounds(n, cost)
                rows.append(
                    (name, n, cost.share_rounds, rounds,
                     f"+{rounds - cost.share_rounds}")
                )
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    tracer = Tracer()
    _measure_rounds(5, GGOR13_COST, tracer=tracer)
    report(
        "e1_measured",
        "AnonChan measured rounds (= r_VSS-share + 5, independent of n)",
        ["VSS profile", "n", "r_VSS-share", "AnonChan rounds", "overhead"],
        rows,
        notes="paper claim: round complexity essentially r_VSS-share;\n"
              "the +5 overhead is constant in n, kappa, and the VSS choice.",
        extra={"phase_breakdown": phase_breakdown(tracer)},
    )
    for _profile, _n, share, total, _ in rows:
        assert total == share + 5


def test_e1_pw96_channel_measured(benchmark):
    """Measured: the *executable* PW96-style channel (traps + fault
    localization) under a persistent jammer — the Omega(n^2) growth,
    end to end, vs our constant round count."""
    import random

    from repro.baselines import run_pw96_channel
    from repro.fields import gf2k

    rows = []

    def run():
        rows.clear()
        f = gf2k(16)
        for n in (4, 6, 8, 10, 12):
            t = (n - 1) // 2
            trace = run_pw96_channel(
                f, n=n, corrupt=set(range(t)), messages={n - 1: 77},
                rng=random.Random(n),
            )
            assert not trace.gave_up
            ours = _measure_rounds(n, GGOR13_COST, seed=n)[0] if n <= 6 else 26
            rows.append(
                (n, t, trace.rounds, trace.investigations,
                 len(trace.burned_pairs), ours)
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e1_pw96_measured",
        "Executable PW96 channel vs AnonChan (persistent jammer, measured)",
        ["n", "t", "PW96 rounds", "investigations", "burned pairs",
         "AnonChan rounds"],
        rows,
        notes="PW96's rounds track the number of burnable pairs t(n-t)+...\n"
              "(footnote 1); AnonChan stays at r_VSS-share + 5 regardless.",
    )
    pw_rounds = [r[2] for r in rows]
    assert pw_rounds == sorted(pw_rounds)  # grows with n
    assert pw_rounds[-1] > 26  # overtaken by the constant-round channel


def test_e1_comparison_with_baselines(benchmark):
    """Model: the §1.1/§1.2 comparison table across n."""
    rows = []

    def build():
        rows.clear()
        for n in (3, 5, 9, 13, 21, 31):
            for est in comparison_table(n, RB89_COST):
                rows.append((n, est.protocol, est.rounds, est.note))
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "e1_baselines",
        "Round complexity vs. baselines (RB89 VSS: 7 sharing rounds)",
        ["n", "protocol", "rounds", "notes"],
        rows,
    )
    # The qualitative claims: ours constant and smallest at scale.
    ours = {n: r for (n, p, r, _) in rows if p.startswith("GGOR14")}
    zhang = {n: r for (n, p, r, _) in rows if p == "Zhang11"}
    pw96 = {n: r for (n, p, r, _) in rows if p == "PW96"}
    assert len(set(ours.values())) == 1  # constant in n
    assert all(ours[n] < zhang[n] for n in ours)
    assert all(ours[n] < pw96[n] for n in ours if n >= 9)
    assert pw96[31] / pw96[13] > 4  # quadratic growth
