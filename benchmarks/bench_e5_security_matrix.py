"""E5 — Theorem 1's security properties under a battery of attacks.

For each adversarial strategy we run full protocol executions and check
the checkable properties: Reliability (X ⊆ Y), the non-malleability
shape (|Y| <= n), honest agreement on PASS/challenge, and whether the
cheater was disqualified.  Anonymity is a distributional statement and
gets its own statistical test below: the placement of each honest
sender's darts in the receiver's final vector is independent of the
sender's identity.
"""

import random
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.core import (
    honest_input_multiset,
    reliability_holds,
    run_anonchan,
    scaled_parameters,
)
from repro.core.adversaries import (
    dependent_input_material,
    guessing_cheater_material,
    jamming_material,
    targeted_material,
    zero_material,
)
from repro.vss import IdealVSS

TRIALS = 12


def _strategies(params, rng):
    f = params.field
    return {
        "honest": None,
        "jamming": jamming_material(params, rng, density=0.5),
        "improper(guess)": guessing_cheater_material(params, [f(1), f(2)], rng),
        "zero-vector": zero_material(params, rng),
        "replay-known": dependent_input_material(params, f(100), rng),
        "targeted-proper": targeted_material(
            params, f(66), list(range(params.d)), rng
        ),
    }


def test_e5_property_matrix(benchmark):
    rows = []

    def run():
        rows.clear()
        params = scaled_parameters(n=4, d=8, num_checks=4, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        f = params.field
        messages = {i: f(100 + i) for i in range(params.n)}
        honest_x = honest_input_multiset([messages[i] for i in range(3)])
        import zlib

        strategy_names = list(_strategies(params, random.Random(0)))
        for name in strategy_names:
            rel = shape = agree = caught_possible = 0
            caught = 0
            for trial in range(TRIALS):
                rng = random.Random(zlib.crc32(name.encode()) + trial)
                material = _strategies(params, rng)[name]
                corrupt = {3: material} if material is not None else None
                res = run_anonchan(
                    params, vss, messages, seed=trial * 37 + 5,
                    corrupt_materials=corrupt,
                )
                out = res.outputs[0]
                x = (
                    honest_input_multiset(list(messages.values()))
                    if material is None
                    else honest_x
                )
                if reliability_holds(x, out.output):
                    rel += 1
                if sum(out.output.values()) <= params.n:
                    shape += 1
                views = list(res.outputs.values())
                if all(v.passed == views[0].passed for v in views):
                    agree += 1
                if material is not None:
                    caught_possible += 1
                    if 3 not in out.passed:
                        caught += 1
            rows.append(
                (name, f"{rel}/{TRIALS}", f"{shape}/{TRIALS}",
                 f"{agree}/{TRIALS}",
                 f"{caught}/{caught_possible}" if caught_possible else "n/a")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e5_matrix",
        f"Security properties under attack ({TRIALS} runs per strategy)",
        ["strategy", "Reliability", "|Y|<=n", "PASS agreement", "caught"],
        rows,
        notes="a jammer survives cut-and-choose w.p. 2^-num_checks = 1/16\n"
              "per run and only then can it break Reliability (Theorem 1's\n"
              "statistical error, visible at these reduced parameters);\n"
              "zero-vector and proper strategies pass by design and are\n"
              "harmless; |Y| <= n and PASS agreement hold in every run.",
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["honest"][1] == f"{TRIALS}/{TRIALS}"
    for name, row in by_name.items():
        # Shape and agreement are unconditional.
        assert row[2] == f"{TRIALS}/{TRIALS}"
        assert row[3] == f"{TRIALS}/{TRIALS}"
        rel_ok = int(row[1].split("/")[0])
        if row[4] == "n/a":
            assert rel_ok == TRIALS
        else:
            caught, possible = (int(v) for v in row[4].split("/"))
            # Reliability can only fail in runs where the cheater slipped
            # through (probability 2^-num_checks each)...
            assert TRIALS - rel_ok <= possible - caught
            if name in ("jamming", "improper(guess)"):
                # ...and cut-and-choose misses at most a few of 12 runs.
                assert caught >= possible - 3
            else:
                # Proper/zero strategies pass the proof by design.
                assert caught == 0
                assert rel_ok == TRIALS


def test_e5_anonymity_dart_placement(benchmark):
    """Anonymity, statistically: in the receiver's reconstructed vector,
    the surviving positions of a *specific sender's* message are
    uniform — swapping which party sends which message leaves the
    position distribution unchanged (total variation ~ sampling noise).
    """
    rows = []

    def run():
        rows.clear()
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16, margin=4)
        vss = IdealVSS(params.field, params.n, params.t)
        f = params.field
        target = 4242
        buckets = 8
        trials = 30
        for label, assignment in (
            ("target sent by P1", {0: 1, 1: target, 2: 2, 3: 3}),
            ("target sent by P3", {0: 1, 1: 3, 2: 2, 3: target}),
        ):
            histogram = Counter()
            for trial in range(trials):
                messages = {pid: f(v) for pid, v in assignment.items()}
                res = run_anonchan(params, vss, messages, seed=trial * 11 + 1)
                vec = res.outputs[0].final_vector
                for k, (x, _a) in vec.entries.items():
                    if x == target:
                        histogram[k * buckets // params.ell] += 1
            total = sum(histogram.values()) or 1
            rows.append(
                (label, total)
                + tuple(
                    f"{histogram.get(b, 0) / total:.2f}" for b in range(buckets)
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    buckets = 8
    report(
        "e5_anonymity",
        "Positions of the target message in the final vector (8 buckets)",
        ["assignment", "darts"] + [f"b{b}" for b in range(buckets)],
        rows,
        notes="both rows are ~uniform (1/8 = 0.125 per bucket): the\n"
              "receiver's view carries no signal about the sender identity.",
    )
    # Coarse uniformity check: no bucket grossly over-represented.
    for row in rows:
        for cell in row[2:]:
            assert float(cell) < 0.30
