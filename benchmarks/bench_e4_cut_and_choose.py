"""E4 — Claim 1: cut-and-choose soundness, and its tightness.

An improper vector survives the proof with probability exactly
``2^-num_checks`` (the optimal cheater guesses every challenge bit and
prepares each copy ``w_j`` for the guessed branch only).  We measure
the survival rate of that optimal cheater against the real
verification logic (VSS-shared batches, reconstructed openings) as a
function of the number of checks.
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.core import (
    AnonChanParams,
    DealerLayout,
    challenge_bits,
    stage1_offsets,
    stage2_passes,
    stage2_plan_bit0,
    stage2_plan_bit1,
    validate_index_list_opening,
    validate_permutation_opening,
)
from repro.core.adversaries import guessing_cheater_material
from repro.network import parallel, run_protocol
from repro.vss import IdealVSS


def _cut_and_choose_game(params: AnonChanParams, vss, material, bits, seed):
    """Run the verification pipeline for one prover against given bits.

    Returns True iff the prover survives (the faithful step-3 logic on
    a real shared batch, minus the unrelated protocol steps).
    """
    layout = DealerLayout(params)
    session = vss.new_session(random.Random(seed))
    secrets = layout.build_secrets(material)

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, secrets if pid == 0 else None, rng, count=layout.total
        )
        # Stage 1.
        views, slices, cursor = [], [], 0
        for j in range(params.num_checks):
            offs = stage1_offsets(layout, j, bits[j])
            views.extend(batch[o] for o in offs)
            slices.append((j, cursor, cursor + len(offs)))
            cursor += len(offs)
        values = yield from session.open_program(pid, views)
        decoded = {}
        ok = True
        for j, lo, hi in slices:
            if bits[j] == 0:
                perm = validate_permutation_opening(values[lo:hi])
                ok = ok and perm is not None
                decoded[j] = perm
            else:
                idx = validate_index_list_opening(
                    values[lo:hi], params.ell, params.d
                )
                ok = ok and idx is not None
                decoded[j] = idx
        if not ok:
            yield from session.open_program(pid, [])
            return False
        # Stage 2.
        views2, slices2, cursor = [], [], 0
        for j in range(params.num_checks):
            plan = (
                stage2_plan_bit0(layout, j, decoded[j], batch.views)
                if bits[j] == 0
                else stage2_plan_bit1(layout, j, decoded[j], batch.views)
            )
            views2.extend(plan.views)
            slices2.append((j, cursor, cursor + len(plan.views)))
            cursor += len(plan.views)
        values2 = yield from session.open_program(pid, views2)
        return all(
            stage2_passes(values2[lo:hi]) for _j, lo, hi in slices2
        )

    programs = {
        pid: party(pid, random.Random(seed * 31 + pid))
        for pid in range(params.n)
    }
    result = run_protocol(programs)
    verdicts = set(result.outputs.values())
    assert len(verdicts) == 1  # all honest parties agree
    return verdicts.pop()


def test_e4_cheater_survival_vs_checks(benchmark):
    rows = []
    trials = 64

    def run():
        rows.clear()
        for num_checks in (1, 2, 3, 4):
            params = AnonChanParams(
                n=4, t=1, kappa=16, ell=24, d=4, num_checks=num_checks
            )
            vss = IdealVSS(params.field, params.n, params.t)
            f = params.field
            survived = 0
            rng = random.Random(1000 + num_checks)
            for trial in range(trials):
                material = guessing_cheater_material(
                    params, [f(1), f(2)], rng
                )
                bits = [rng.randrange(2) for _ in range(num_checks)]
                if _cut_and_choose_game(
                    params, vss, material, bits, seed=trial
                ):
                    survived += 1
            rate = survived / trials
            bound = 2.0**-num_checks
            # three-sigma binomial tolerance around the predicted rate
            tol = 3 * (bound * (1 - bound) / trials) ** 0.5 + 0.02
            rows.append(
                (num_checks, trials, survived, f"{rate:.3f}", f"{bound:.3f}",
                 "OK" if abs(rate - bound) <= tol else "OFF")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e4_cut_and_choose",
        "Optimal improper-vector cheater survival (Claim 1, tight)",
        ["num_checks", "trials", "survived", "measured rate",
         "2^-num_checks", "verdict"],
        rows,
        notes="the optimal cheater survives iff it guesses every challenge\n"
              "bit: measured rates track 2^-num_checks, confirming both the\n"
              "soundness bound and its tightness.",
    )
    assert all(row[-1] == "OK" for row in rows)


def test_e4_honest_prover_never_disqualified(benchmark):
    """Completeness: honest material passes every challenge pattern."""
    from repro.core import honest_material

    outcomes = []

    def run():
        outcomes.clear()
        params = AnonChanParams(n=4, t=1, kappa=16, ell=24, d=4, num_checks=3)
        vss = IdealVSS(params.field, params.n, params.t)
        rng = random.Random(7)
        for pattern in range(8):  # every 3-bit challenge
            bits = [(pattern >> j) & 1 for j in range(3)]
            material = honest_material(params, params.field(77), rng)
            outcomes.append(
                _cut_and_choose_game(params, vss, material, bits, seed=pattern)
            )
        return outcomes

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e4_completeness",
        "Honest prover vs all 8 challenge patterns (num_checks=3)",
        ["pattern", "survived"],
        [(i, o) for i, o in enumerate(outcomes)],
    )
    assert all(outcomes)
