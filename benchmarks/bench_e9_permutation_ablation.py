"""E9 — Ablation: the receiver's random permutations g_i (paper §3).

Figure 1, step 4 applies a secret random permutation ``g_i`` to every
accepted vector.  The paper's parenthetical: without it, the non-zero
entries of accepted *malicious* vectors sit exactly at the indices the
adversary chose — violating Claim 2's hypothesis that every ``I_i`` is
random.  We run the real protocol with a proper-but-targeted adversary
(all darts at indices 0..d-1) twice: with honest ``g_i`` and with
``g_i`` forced to the identity, and measure where the adversary's
entries end up in the receiver's final vector.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import random

from _common import report

from repro.core import Permutation, run_anonchan, scaled_parameters
from repro.core.adversaries import targeted_material
from repro.vss import IdealVSS

TRIALS = 12
TARGET = 0x5151


def _adversary_positions(params, vss, identity_g, seed):
    """Run once; return the final-vector indices holding the adversary's
    message."""
    f = params.field
    messages = {i: f(100 + i) for i in range(params.n)}
    rng = random.Random(seed)
    material = targeted_material(
        params, f(TARGET), list(range(params.d)), rng
    )
    receiver_perms = (
        [Permutation.identity(params.ell) for _ in range(params.n)]
        if identity_g
        else None
    )
    res = run_anonchan(
        params, vss, messages, seed=seed,
        corrupt_materials={3: material},
        receiver_perms=receiver_perms,
    )
    vec = res.outputs[0].final_vector
    return [k for k, (x, _a) in vec.entries.items() if x == TARGET]


def test_e9_targeted_placement(benchmark):
    rows = []

    def run():
        rows.clear()
        params = scaled_parameters(n=4, d=6, num_checks=3, kappa=16)
        vss = IdealVSS(params.field, params.n, params.t)
        for identity_g, label in ((True, "without g_i (identity)"),
                                  (False, "with g_i (protocol)")):
            in_target_zone = 0
            total = 0
            for trial in range(TRIALS):
                positions = _adversary_positions(
                    params, vss, identity_g, seed=trial * 7 + 3
                )
                total += len(positions)
                in_target_zone += sum(1 for k in positions if k < params.d)
            frac = in_target_zone / total if total else 0.0
            expected_random = params.d / params.ell
            rows.append(
                (label, total, in_target_zone, f"{frac:.3f}",
                 f"{expected_random:.3f}")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e9_ablation",
        "Adversary darts landing in its chosen zone [0, d)",
        ["configuration", "surviving darts", "in chosen zone",
         "fraction", "uniform baseline"],
        rows,
        notes="without g_i the adversary's entries sit exactly where it\n"
              "put them (fraction 1.0), breaking Claim 2's randomness\n"
              "hypothesis; with g_i the placement drops to the uniform\n"
              "baseline d/l, as the proof requires.",
    )
    without = next(r for r in rows if r[0].startswith("without g_i"))
    with_g = next(r for r in rows if r[0].startswith("with g_i"))
    assert float(without[3]) == 1.0
    assert float(with_g[3]) < 0.25
