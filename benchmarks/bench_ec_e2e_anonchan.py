"""Ec — End-to-end batched AnonChan hot path vs the scalar reference.

PR 10's tentpole: the whole protocol hot path — dealing, the kappa
cut-and-choose copy-checks per prover (steps 2-3), and the step-4
receiver reconstruction — runs through the numpy batch kernels, with
Vandermonde/Lagrange tables cached across epochs and payload accounting
precomputed at the VSS layer.  This bench pins the resulting end-to-end
speedup at paper-scale parameters and is gated by ``bench-check`` in CI
(the ≥5x assertion below fails the bench job outright if the batched
path regresses to scalar-ish speed).

Every row asserts byte-identical protocol results across backends
(outputs *and* field-element accounting): the backend is an
execution-speed knob, never a semantics knob — the differential harness
in tests/core/test_batched_equivalence.py holds the same line per
adversary strategy.
"""

import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import phase_breakdown, report

from repro.core import paper_parameters, run_anonchan, scaled_parameters
from repro.obs import Tracer
from repro.obs.profiler import OpProfiler
from repro.vss import IdealVSS

# The paper-scale row: honest majority at the paper's threshold bound
# (t = floor((n-1)/2)) with the structure-preserving scaled
# parameterization (l = margin*(n-1)*d, DESIGN.md section 3).  This is
# the regime the batch kernels target — wide openings (l*kappa-scale
# cut-and-choose) across a real quorum — and the row the ≥5x gate holds.
PAPER_SCALE = dict(n=9, d=8, num_checks=6, kappa=16, margin=8)
MIN_SPEEDUP = 5.0


def _run_once(params, seed):
    vss = IdealVSS(params.field, params.n, params.t)
    messages = {i: params.field(10 + i) for i in range(params.n)}
    gc.collect()
    t0 = time.perf_counter()
    res = run_anonchan(params, vss, messages, seed=seed)
    elapsed = time.perf_counter() - t0
    outputs = [
        (sorted(out.output.items()) if out.output is not None else None)
        for out in res.outputs.values()
    ]
    return elapsed, (outputs, res.metrics.field_elements_sent)


def _measure(label, params_for, seed):
    """One table row: scalar once, vectorized best-of-2 (noise floor)."""
    scalar_s, scalar_result = _run_once(params_for("scalar"), seed)
    vec_params = params_for("vectorized")
    vec_s, vec_result = _run_once(vec_params, seed)
    vec_s2, vec_result2 = _run_once(vec_params, seed)
    assert vec_result == vec_result2  # deterministic under fixed seed
    assert scalar_result == vec_result  # identical transcript semantics
    vec_best = min(vec_s, vec_s2)
    return (
        label,
        params_for("scalar").n,
        params_for("scalar").ell,
        round(scalar_s, 3),
        round(vec_best, 3),
        round(scalar_s / vec_best, 2),
    )


def test_ec_e2e_anonchan_speedup(benchmark):
    rows = []
    extra = {}

    def run():
        rows.clear()
        rows.append(
            _measure(
                "paper n=2",
                lambda b: paper_parameters(2, sharing_backend=b),
                seed=7,
            )
        )
        rows.append(
            _measure(
                "scaled n=6",
                lambda b: scaled_parameters(
                    n=6, d=8, num_checks=4, kappa=16, margin=8,
                    sharing_backend=b,
                ),
                seed=7,
            )
        )
        rows.append(
            _measure(
                "paper-scale n=9",
                lambda b: scaled_parameters(**PAPER_SCALE, sharing_backend=b),
                seed=7,
            )
        )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Untimed instrumented run at paper scale: the artifact carries the
    # per-phase breakdown and the batched/fallback op accounting (the
    # timed legs run untraced so instrumentation cannot skew the gate).
    params = scaled_parameters(**PAPER_SCALE, sharing_backend="vectorized")
    vss = IdealVSS(params.field, params.n, params.t)
    tracer, prof = Tracer(), OpProfiler()
    run_anonchan(
        params, vss, {i: params.field(10 + i) for i in range(params.n)},
        seed=7, tracer=tracer, profiler=prof,
    )
    counters = {
        name: prof.total("vss", name)
        for name in (
            "deal_batched", "open_batched", "combine_batched",
            "deal_scalar_fallback", "open_scalar_fallback",
            "combine_scalar_fallback",
        )
    }
    extra["phase_breakdown"] = {"paper-scale n=9": phase_breakdown(tracer)}
    extra["vss_op_counters"] = counters

    report(
        "ec_e2e_anonchan",
        "AnonChan end-to-end: batched hot path vs scalar reference",
        ["row", "n", "l", "scalar s", "vectorized s", "speedup"],
        rows,
        notes="identical outputs and field-element accounting asserted per\n"
              "row; vectorized column is best-of-2 (single-shot noise\n"
              "floor), scalar runs once.  paper n=2 has t=0 (quorum 1, no\n"
              "recombination work to batch), so its ratio reflects payload\n"
              "accounting and dealing alone; the honest-majority paper-scale\n"
              "row is the gated deliverable.",
        extra=extra,
    )

    # The explicitly vectorized mode must never have taken a scalar
    # fallback, and the batch kernels must actually have engaged.
    assert counters["combine_scalar_fallback"] == 0
    assert counters["deal_batched"] > 0
    assert counters["open_batched"] > 0
    assert counters["combine_batched"] > 0

    # The tentpole gate: >=5x end to end at paper-scale parameters.
    paper_row = rows[-1]
    assert paper_row[0] == "paper-scale n=9"
    assert paper_row[5] >= MIN_SPEEDUP, (
        f"end-to-end batched speedup regressed: {paper_row[5]}x < "
        f"{MIN_SPEEDUP}x at paper-scale parameters"
    )
