"""Shared table-reporting helpers for the experiment benchmarks.

Every experiment prints its table (the artifact being reproduced) and
appends it to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md
can quote measured numbers.  :func:`report` additionally writes the
machine-readable twin ``benchmarks/results/BENCH_<experiment>.json``
(headers, rows, notes, plus any ``extra`` payload such as the
:func:`phase_breakdown` of a traced run) so downstream tooling never
has to scrape the text tables.

The Eµ (``emu_*``), Ec (``ec_*``), and runtime (``async_*``)
experiments are the performance trajectory of the repo, so their
JSON artifacts are *also*
written/refreshed at the repository root as canonical ``BENCH_*.json``
files (CI uploads them as artifacts); everything else stays under
``benchmarks/results/`` only.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Repository root, for the canonical copies of the perf-trajectory
#: experiments.
ROOT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Experiment-name prefixes whose BENCH json is mirrored at the root.
ROOT_BENCH_PREFIXES = ("emu_", "ec_", "async_", "timing_")

BENCH_JSON_VERSION = 1


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def report(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
    extra: dict | None = None,
) -> str:
    """Print the experiment table and persist it under results/.

    Writes both the human-readable ``<experiment>.txt`` and the
    machine-readable ``BENCH_<experiment>.json``; ``extra`` carries
    structured side-data (e.g. per-phase breakdowns from a traced run)
    into the JSON artifact only.
    """
    table = format_table(headers, rows)
    body = f"== {experiment}: {title} ==\n{table}"
    if notes:
        body += f"\n{notes}"
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(body + "\n")
    payload = {
        "version": BENCH_JSON_VERSION,
        "experiment": experiment,
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[_jsonable(c) for c in row] for row in rows],
        "notes": notes,
    }
    if extra:
        payload["extra"] = extra
    profile = _active_profile_summary()
    if profile is not None:
        payload.setdefault("extra", {})["profile"] = profile
    json_path = os.path.join(RESULTS_DIR, f"BENCH_{experiment}.json")
    paths = [json_path]
    if experiment.startswith(ROOT_BENCH_PREFIXES):
        paths.append(os.path.join(ROOT_DIR, f"BENCH_{experiment}.json"))
    for path in paths:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return body


def _active_profile_summary() -> dict | None:
    """Op-counter summary of the active profiler, if one is enabled.

    Benchmarks that run under :func:`repro.obs.profiled` get their
    compute-op totals embedded in the JSON artifact's ``extra.profile``
    automatically; unprofiled runs (the default) embed nothing.
    """
    try:
        from repro.obs.profiler import get_profiler
    except ImportError:  # repro not importable: plain table reporting
        return None
    profiler = get_profiler()
    if not profiler.enabled:
        return None
    summary = profiler.summary()
    return summary if summary["total_ops"] else None


def _jsonable(cell):
    """Table cells as JSON scalars (field elements etc. via str)."""
    if isinstance(cell, (bool, int, float, str)) or cell is None:
        return cell
    return str(cell)


def phase_breakdown(tracer) -> dict:
    """Per-phase/per-party cost dict of a traced run (for ``extra``).

    ``tracer`` is a :class:`repro.obs.Tracer` that observed one
    execution; the result is the JSON-stable form of
    :class:`repro.obs.RunMetrics`.
    """
    from repro.obs import RunMetrics

    return RunMetrics.from_events(tracer.events).to_dict()
