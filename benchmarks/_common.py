"""Shared table-reporting helpers for the experiment benchmarks.

Every experiment prints its table (the artifact being reproduced) and
appends it to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md
can quote measured numbers.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def report(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    notes: str = "",
) -> str:
    """Print the experiment table and persist it under results/."""
    table = format_table(headers, rows)
    body = f"== {experiment}: {title} ==\n{table}"
    if notes:
        body += f"\n{notes}"
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(body + "\n")
    return body
