"""Ec — Communication complexity and the paper-exact parameter scale.

The paper (§1.2, closing remark) *forgoes* explicit treatment of
communication complexity — its focus is feasibility of constant-round
channels — noting the protocols "can be compiled via generic techniques
[BFO12] into more communication-efficient versions".  We measure what
the uncompiled protocol actually costs on the simulator (field elements
on the wire, per VSS profile and per n), and tabulate the paper-exact
parameter sizes that motivate DESIGN.md's scaled parameterization.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import phase_breakdown, report

from repro.core import paper_parameters, run_anonchan, scaled_parameters
from repro.obs import Tracer
from repro.vss import IdealVSS


def test_ec_measured_bandwidth(benchmark):
    rows = []

    def run():
        rows.clear()
        for n in (3, 4, 5, 6, 7):
            params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
            vss = IdealVSS(params.field, params.n, params.t)
            messages = {i: params.field(10 + i) for i in range(n)}
            res = run_anonchan(params, vss, messages, seed=n)
            m = res.metrics
            per_dealer = params.values_per_dealer
            rows.append(
                (n, params.ell, per_dealer,
                 per_dealer * n + params.values_receiver,
                 m.private_messages, m.field_elements_sent)
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ec_bandwidth",
        "Measured communication (scaled parameters, ideal-VSS hybrid)",
        ["n", "l", "VSS values/dealer", "VSS values total",
         "private messages", "field elements on wire"],
        rows,
        notes="the paper treats communication complexity as out of scope\n"
              "(compilable via [BFO12]); these are the uncompiled costs of\n"
              "this implementation, dominated by the cut-and-choose openings.\n"
              "payload_size now counts mapping keys as wire atoms; these\n"
              "totals are unchanged because the ideal-VSS hybrid puts only\n"
              "flat lists on the wire (dict payloads appear under costed\n"
              "VSS profiles, whose traced runs do count labels).",
    )
    # Sanity: costs grow with n (superlinear: more dealers x longer vectors).
    elements = [r[5] for r in rows]
    assert all(a < b for a, b in zip(elements, elements[1:]))


def test_ec_sharing_backend_speedup(benchmark):
    """End-to-end AnonChan wall time: scalar vs vectorized sharing.

    Both backends must produce byte-identical protocol transcripts (the
    backend is purely an execution-speed knob); the vectorized run is
    traced so the JSON artifact carries its per-phase breakdown.
    """
    import time

    rows = []
    breakdowns = {}

    def run():
        rows.clear()
        for n in (4, 5, 6):
            params_by_backend = {
                backend: scaled_parameters(
                    n=n, d=6, num_checks=3, kappa=16, margin=6,
                    sharing_backend=backend,
                )
                for backend in ("scalar", "vectorized")
            }
            timings = {}
            outputs = {}
            for backend, params in params_by_backend.items():
                vss = IdealVSS(params.field, params.n, params.t)
                messages = {i: params.field(10 + i) for i in range(n)}
                tracer = Tracer() if backend == "vectorized" else None
                t0 = time.perf_counter()
                res = run_anonchan(params, vss, messages, seed=n, tracer=tracer)
                timings[backend] = time.perf_counter() - t0
                outputs[backend] = [
                    (sorted(out.output.items()) if out.output is not None else None)
                    for out in res.outputs.values()
                ]
                if tracer is not None:
                    breakdowns[f"n={n}"] = phase_breakdown(tracer)
            assert outputs["scalar"] == outputs["vectorized"]
            rows.append(
                (n,
                 round(timings["scalar"], 3),
                 round(timings["vectorized"], 3),
                 round(timings["scalar"] / timings["vectorized"], 2))
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ec_backend_speedup",
        "AnonChan end-to-end: scalar vs vectorized sharing backend "
        "(scaled parameters)",
        ["n", "scalar s", "vectorized s", "speedup"],
        rows,
        notes="identical protocol outputs asserted per run; the vectorized\n"
              "column includes tracing overhead (its phase breakdown is in\n"
              "the JSON artifact under extra.phase_breakdown).",
        extra={"phase_breakdown": breakdowns},
    )
    # The backends must agree; speed is reported, not asserted (the
    # simulator's Python overhead dominates at the small scaled sizes).


def test_ec_paper_parameter_scale(benchmark):
    """Why experiments use scaled parameters: the exact sizes."""
    rows = []

    def run():
        rows.clear()
        for n in (3, 5, 7, 9, 13):
            p = paper_parameters(n)
            rows.append(
                (n, p.kappa, f"{p.d:,}", f"{p.ell:,}",
                 f"{p.values_per_dealer:,}",
                 f"{p.values_per_dealer * p.n + p.values_receiver:,}")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ec_paper_scale",
        "Paper-exact parameters (d = n^4 k, l = 4 n^6 k, kappa raised to "
        "encode indices)",
        ["n", "kappa", "d", "l", "VSS sharings per dealer", "total sharings"],
        rows,
        notes="already at n=5 a single execution would require ~10^9 VSS\n"
              "sharings; the paper never executed these parameters either\n"
              "(no implementation exists).  DESIGN.md section 3 documents the\n"
              "structure-preserving scaled parameterization used instead.",
    )
    assert int(rows[0][4].replace(",", "")) > 10**6  # even n=3 is huge
