"""Ec — Communication complexity and the paper-exact parameter scale.

The paper (§1.2, closing remark) *forgoes* explicit treatment of
communication complexity — its focus is feasibility of constant-round
channels — noting the protocols "can be compiled via generic techniques
[BFO12] into more communication-efficient versions".  We measure what
the uncompiled protocol actually costs on the simulator (field elements
on the wire, per VSS profile and per n), and tabulate the paper-exact
parameter sizes that motivate DESIGN.md's scaled parameterization.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.core import paper_parameters, run_anonchan, scaled_parameters
from repro.vss import IdealVSS


def test_ec_measured_bandwidth(benchmark):
    rows = []

    def run():
        rows.clear()
        for n in (3, 4, 5, 6, 7):
            params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
            vss = IdealVSS(params.field, params.n, params.t)
            messages = {i: params.field(10 + i) for i in range(n)}
            res = run_anonchan(params, vss, messages, seed=n)
            m = res.metrics
            per_dealer = params.values_per_dealer
            rows.append(
                (n, params.ell, per_dealer,
                 per_dealer * n + params.values_receiver,
                 m.private_messages, m.field_elements_sent)
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ec_bandwidth",
        "Measured communication (scaled parameters, ideal-VSS hybrid)",
        ["n", "l", "VSS values/dealer", "VSS values total",
         "private messages", "field elements on wire"],
        rows,
        notes="the paper treats communication complexity as out of scope\n"
              "(compilable via [BFO12]); these are the uncompiled costs of\n"
              "this implementation, dominated by the cut-and-choose openings.",
    )
    # Sanity: costs grow with n (superlinear: more dealers x longer vectors).
    elements = [r[5] for r in rows]
    assert all(a < b for a, b in zip(elements, elements[1:]))


def test_ec_paper_parameter_scale(benchmark):
    """Why experiments use scaled parameters: the exact sizes."""
    rows = []

    def run():
        rows.clear()
        for n in (3, 5, 7, 9, 13):
            p = paper_parameters(n)
            rows.append(
                (n, p.kappa, f"{p.d:,}", f"{p.ell:,}",
                 f"{p.values_per_dealer:,}",
                 f"{p.values_per_dealer * p.n + p.values_receiver:,}")
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ec_paper_scale",
        "Paper-exact parameters (d = n^4 k, l = 4 n^6 k, kappa raised to "
        "encode indices)",
        ["n", "kappa", "d", "l", "VSS sharings per dealer", "total sharings"],
        rows,
        notes="already at n=5 a single execution would require ~10^9 VSS\n"
              "sharings; the paper never executed these parameters either\n"
              "(no implementation exists).  DESIGN.md section 3 documents the\n"
              "structure-preserving scaled parameterization used instead.",
    )
    assert int(rows[0][4].replace(",", "")) > 10**6  # even n=3 is huge
