"""Runtime — asyncio transport throughput vs the lockstep reference.

The pluggable-transport runtime executes each party as an independent
asyncio task coordinated by a round synchronizer; this experiment
measures what that machinery costs.  For each ``n`` we drive a chatty
fixed-shape protocol (every party messages every other party each
round, one broadcast per round) through the lockstep simulator and
through the async transport under three latency models — zero (the
lockstep-equivalent configuration), fixed, and uniform jitter — and
report wall-clock rounds/second plus the async/lockstep overhead
ratio.  Latency is *virtual* (it orders deliveries, it does not
sleep), so the fixed/jitter columns isolate the cost of sampling and
sorting the delivery plan, not idle waiting.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.network import RoundOutput, run_protocol
from repro.network.runtime import (
    FixedLatency,
    InMemoryAsyncTransport,
    UniformLatency,
)

ROUNDS = 30
REPEATS = 3


def _mesh_programs(n: int, rounds: int = ROUNDS):
    """Full-mesh exchange: n*(n-1) private messages + n broadcasts/round."""

    def prog(pid: int):
        inbox = yield RoundOutput(
            private={q: [pid] for q in range(n) if q != pid},
            broadcast=[pid],
        )
        for _ in range(rounds - 1):
            total = sum(v for vals in inbox.private.values() for v in vals)
            inbox = yield RoundOutput(
                private={q: [total] for q in range(n) if q != pid},
                broadcast=[total],
            )
        return None

    return {pid: prog(pid) for pid in range(n)}


def _transports():
    return [
        ("lockstep", lambda: "lockstep"),
        ("async/zero", lambda: InMemoryAsyncTransport()),
        ("async/fixed-1ms", lambda: InMemoryAsyncTransport(
            latency=FixedLatency(base_ms=1.0), seed=1)),
        ("async/jitter-5ms", lambda: InMemoryAsyncTransport(
            latency=UniformLatency(base_ms=1.0, jitter_ms=5.0), seed=1)),
    ]


def _time_once(n: int, make_transport) -> tuple[float, int]:
    programs = _mesh_programs(n)
    start = time.perf_counter()
    result = run_protocol(programs, transport=make_transport())
    elapsed = time.perf_counter() - start
    return elapsed, result.metrics.rounds


def test_async_runtime_throughput(benchmark):
    rows = []

    def run():
        rows.clear()
        for n in (3, 5, 8):
            baseline_sec = None
            for label, make_transport in _transports():
                best = min(
                    _time_once(n, make_transport)[0]
                    for _ in range(REPEATS)
                )
                _, rounds = _time_once(n, make_transport)
                if label == "lockstep":
                    baseline_sec = best
                overhead = best / baseline_sec
                rows.append(
                    (n, label, rounds, round(best * 1e3, 3),
                     round(rounds / best), round(overhead, 2))
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "async_runtime",
        "Asyncio transport throughput (full-mesh exchange, virtual time)",
        ["n", "transport", "rounds", "best wall ms", "rounds/sec",
         "x lockstep"],
        rows,
        notes="latency models are virtual (they order deliveries within a\n"
              "round, they do not sleep), so every column measures engine\n"
              "overhead: task scheduling, per-message latency sampling, and\n"
              "delivery-plan sorting.  zero-latency async is the\n"
              "configuration the equivalence suite proves bit-for-bit\n"
              "identical to lockstep.",
    )
    # Sanity: every configuration completed the full schedule.
    assert all(r[2] == ROUNDS for r in rows)
    # The async engine must stay within an order of magnitude of
    # lockstep on this chatty workload (it is a correctness-first
    # runtime, not a performance claim — but a 10x cliff is a bug).
    assert all(r[5] < 10.0 for r in rows)
