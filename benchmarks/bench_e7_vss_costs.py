"""E7 — VSS cost table (paper §2.2, footnotes 6-7, §1.2).

The literature figures the paper quotes, plus *measured* costs of the
executable backends in this repository (honest-dealer fast path and
under attack).
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import report

from repro.fields import gf2k
from repro.network import SilentAdversary, run_protocol
from repro.vss import BGWVSS, PROFILES, RB89VSS


def _measure(scheme, adversary=None, seed=0):
    session = scheme.new_session(random.Random(seed))
    f = scheme.field
    n = scheme.n

    def party(pid, rng):
        batch = yield from session.share_program(
            pid, 0, [f(42)] if pid == 0 else None, rng, count=1
        )
        from repro.vss import DEALER_DISQUALIFIED

        if batch is DEALER_DISQUALIFIED:
            return None
        values = yield from session.open_program(pid, batch.views)
        return values[0]

    programs = {
        pid: party(pid, random.Random(seed + pid)) for pid in range(n)
    }
    return run_protocol(programs, adversary=adversary)


def test_e7_profile_table(benchmark):
    rows = []

    def build():
        rows.clear()
        for profile in PROFILES.values():
            rows.append(
                (profile.name, profile.threshold, profile.security,
                 profile.cost.share_rounds,
                 profile.cost.share_broadcast_rounds,
                 profile.cost.reconstruct_rounds, profile.source)
            )
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "e7_profiles",
        "VSS schemes compared in the paper (+ this repo's backends)",
        ["scheme", "threshold", "security", "share rounds",
         "share broadcasts", "rec rounds", "source"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["RB89"][3] == 7  # §1.1/§1.2
    assert by_name["Rab94"][3] == 9  # footnote 7
    assert by_name["GGOR13"][3] == 21 and by_name["GGOR13"][4] == 2  # §2.2


def test_e7_measured_backend_costs(benchmark):
    rows = []

    def run():
        rows.clear()
        for n, t in ((4, 1), (7, 2), (10, 3)):
            for label, scheme in (
                (f"BGW n={n},t={t}", BGWVSS(gf2k(16), n, t)),
                (f"RB89 n={n},t={(n - 1) // 2}",
                 RB89VSS(gf2k(16), n, (n - 1) // 2)),
            ):
                res = _measure(scheme)
                rows.append(
                    (label, "honest dealer", res.metrics.rounds - 1,
                     res.metrics.broadcast_rounds)
                )
                res = _measure(scheme, adversary=SilentAdversary({n - 1}))
                rows.append(
                    (label, "silent party", res.metrics.rounds - 1,
                     res.metrics.broadcast_rounds)
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "e7_measured",
        "Measured executable-VSS costs (share phase; opening excluded)",
        ["scheme", "scenario", "share rounds", "broadcast rounds"],
        rows,
        notes="honest fast path: 3 rounds, 0 broadcasts; faults trigger the\n"
              "complaint/accusation machinery (more rounds + broadcasts).",
    )
    honest = [r for r in rows if r[1] == "honest dealer"]
    assert all(r[2] == 3 and r[3] == 0 for r in honest)


def test_e7_bgw_share_throughput(benchmark):
    """Timing: batched sharing+opening of 64 secrets at n=4."""
    scheme = BGWVSS(gf2k(16), 4, 1)
    f = scheme.field
    secrets = [f(i + 1) for i in range(64)]

    def run():
        session = scheme.new_session(random.Random(0))

        def party(pid, rng):
            batch = yield from session.share_program(
                pid, 0, secrets if pid == 0 else None, rng, count=len(secrets)
            )
            values = yield from session.open_program(pid, batch.views)
            return values

        programs = {
            pid: party(pid, random.Random(pid)) for pid in range(4)
        }
        result = run_protocol(programs)
        assert result.outputs[1] == secrets
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
